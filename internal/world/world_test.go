package world

import (
	"testing"

	"retrodns/internal/core"
	"retrodns/internal/dnscore"
	"retrodns/internal/scanner"
)

// smallConfig keeps the benign population small so the end-to-end test is
// fast; the campaign machinery is exercised in full.
func smallConfig() Config {
	return Config{
		Seed:              7,
		StableDomains:     60,
		TransitionDomains: 5,
		NoisyDomains:      2,
		BenignTransients:  3,
		FlakyFraction:     0.05,
		PDNSCoverage:      1.0,
		Campaigns:         true,
		DNSSEC:            true,
	}
}

func runPipeline(t *testing.T, w *World) *core.Result {
	t.Helper()
	res, _ := runPipelineDS(t, w)
	return res
}

// runPipelineDS runs the study and pipeline, returning both the result and
// the scan dataset.
func runPipelineDS(t *testing.T, w *World) (*core.Result, *scanner.Dataset) {
	t.Helper()
	ds := w.Run()
	if len(w.Errors) != 0 {
		for _, err := range w.Errors {
			t.Errorf("world error: %v", err)
		}
		t.Fatal("world run produced errors")
	}
	p := &core.Pipeline{
		Params:  core.DefaultParams(),
		Dataset: ds,
		Meta:    w.Meta,
		PDNS:    w.PDNSDB,
		CT:      w.CT,
		DNSSEC:  w.SecLog,
	}
	return p.Run(), ds
}

func TestWorldEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full study simulation")
	}
	w := New(smallConfig())
	res := runPipeline(t, w)

	expHijacked, expTargeted := w.ExpectedVictims()
	gotHijacked := make(map[dnscore.Name]*core.Finding)
	for _, f := range res.Hijacked {
		gotHijacked[f.Domain] = f
	}
	gotTargeted := make(map[dnscore.Name]*core.Finding)
	for _, f := range res.Targeted {
		gotTargeted[f.Domain] = f
	}

	// Recall: every ground-truth hijacked domain is identified.
	missedH := 0
	for _, d := range expHijacked {
		if gotHijacked[d] == nil {
			t.Errorf("missed hijacked domain %s (truth method %s)", d, w.Truth[d].Method)
			missedH++
		}
	}
	missedT := 0
	for _, d := range expTargeted {
		if gotTargeted[d] == nil && gotHijacked[d] == nil {
			t.Errorf("missed targeted domain %s", d)
			missedT++
		}
	}

	// Precision: no benign domain is flagged.
	for d := range gotHijacked {
		if truth := w.Truth[d]; truth == nil || truth.Kind != "hijacked" {
			t.Errorf("false positive hijacked: %s (truth %+v)", d, truth)
		}
	}
	for d := range gotTargeted {
		if truth := w.Truth[d]; truth == nil || (truth.Kind != "targeted" && truth.Kind != "hijacked") {
			t.Errorf("false positive targeted: %s (truth %+v)", d, truth)
		}
	}

	t.Logf("hijacked: got %d want %d; targeted: got %d want %d",
		len(res.Hijacked), len(expHijacked), len(res.Targeted), len(expTargeted))
	t.Logf("funnel:\n%s", res.Funnel.String())

	// Identification methods should match the paper's Type column.
	for _, f := range res.Hijacked {
		truth := w.Truth[f.Domain]
		if truth == nil {
			continue
		}
		if truth.Method != string(f.Method) {
			t.Errorf("%s: method %s, paper says %s", f.Domain, f.Method, truth.Method)
		}
	}
}
