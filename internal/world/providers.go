package world

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"

	"retrodns/internal/ipmeta"
)

// ErrAddressSpaceExhausted reports that the allocator ran out of /16s to
// carve blocks from — only reachable with a pathologically oversized
// provider table, but a data-shaped failure nonetheless, so it surfaces
// through World.Errors instead of a panic.
var ErrAddressSpaceExhausted = errors.New("world: allocator address space exhausted")

// Provider describes one hosting network: an ASN, its display name, its
// owning organization, and the countries it operates in. The world
// allocates each (provider, country) pair a /20 of address space and
// registers it with the prefix, organization, and geolocation tables.
type Provider struct {
	ASN       ipmeta.ASN
	Name      string
	Org       ipmeta.OrgID
	Countries []ipmeta.CountryCode
}

// AttackerProviders are the networks of the paper's Table 5, with the
// countries their attacker-leased hosts geolocated to in Tables 2 and 3.
var AttackerProviders = []Provider{
	{14061, "Digital Ocean", "digitalocean", cc("NL", "DE", "US")},
	{20473, "Vultr", "vultr", cc("NL", "FR", "DE", "US", "SG", "JP")},
	{45102, "Alibaba", "alibaba", cc("SG", "HK", "US", "JP")},
	{50673, "Serverius", "serverius", cc("NL")},
	{48282, "VDSINA", "vdsina", cc("RU")},
	{47220, "ANTENA3", "antena3", cc("RO")},
	{9009, "M247", "m247", cc("AT", "US")},
	{24961, "MYLOC", "myloc", cc("DE")},
	{63949, "Linode", "linode", cc("DE")},
	{136574, "Zheye Network", "zheye", cc("HK", "JP")},
	{20860, "IOMart", "iomart", cc("GB")},
	{54825, "Packet Host", "packet", cc("US")},
	{24940, "Hetzner", "hetzner", cc("DE")},
	{41436, "CloudWebManage", "cwm", cc("NL")},
	{64022, "Kamatera", "kamatera", cc("HK")},
}

// CloudSiblings model the paper's same-organization pruning case (Amazon
// announcing from both AS16509 and AS14618): benign transients inside
// these org pairs must be pruned, not flagged.
var CloudSiblings = []Provider{
	{16509, "AMAZON-02", "amazon", cc("US", "DE", "IE")},
	{14618, "AMAZON-AES", "amazon", cc("US")},
}

func cc(codes ...ipmeta.CountryCode) []ipmeta.CountryCode { return codes }

// allocator hands out deterministic IPv4 space: each (ASN, country) pair
// receives a /20 carved from sequential /16s starting at base.
type allocator struct {
	mu     sync.Mutex
	meta   *ipmeta.Directory
	nextB  int // second octet of the next unallocated /16
	carved int // total /20s carved, including rotated-away full ones
	blocks map[blockKey]*block
	// errs collects registration failures and exhaustion; drained into
	// World.Errors by drainErrors so bad data degrades instead of crashing.
	errs []error
}

type blockKey struct {
	asn ipmeta.ASN
	cc  ipmeta.CountryCode
}

type block struct {
	prefix netip.Prefix
	next   uint32 // host counter within the /20
}

const allocFirstOctet = 100 // allocations live in 100.B.0.0/16 space

func newAllocator(meta *ipmeta.Directory) *allocator {
	return &allocator{meta: meta, nextB: 1, blocks: make(map[blockKey]*block)}
}

// carveBlock claims the next /20, registers its prefix, geo, and origin
// entries, and installs it as the current block for (asn, cc). Metadata
// failures are journaled, not fatal: addresses keep flowing and the error
// surfaces through World.Errors.
func (a *allocator) carveBlock(k blockKey) *block {
	// Four /20s per /16 keeps octet arithmetic trivial: sub-block s
	// covers 100.B.(s*16).0/20.
	idx := a.carved
	a.carved++
	b16 := a.nextB + idx/4
	sub := idx % 4
	if b16 > 255 {
		a.errs = append(a.errs, fmt.Errorf("%w: no /16 left for AS%d %s", ErrAddressSpaceExhausted, k.asn, k.cc))
		b16 = 255 // degrade into shared space; the journaled error flags the corruption
	}
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{allocFirstOctet, byte(b16), byte(sub * 16), 0}), 20)
	if err := a.meta.Prefixes.Announce(prefix, k.asn); err != nil {
		a.errs = append(a.errs, fmt.Errorf("world: announce %s: %w", prefix, err))
	}
	if err := a.meta.Geo.AddPrefix(prefix, k.cc); err != nil {
		a.errs = append(a.errs, fmt.Errorf("world: geolocate %s: %w", prefix, err))
	}
	b := &block{prefix: prefix, next: 1}
	a.blocks[k] = b
	return b
}

// ensureBlock registers the /20 for (asn, cc), creating prefix, geo, and
// origin entries on first use.
func (a *allocator) ensureBlock(asn ipmeta.ASN, country ipmeta.CountryCode) *block {
	k := blockKey{asn, country}
	if b, ok := a.blocks[k]; ok {
		return b
	}
	return a.carveBlock(k)
}

// Alloc returns the next unused address announced by asn in country. A
// /20 that fills up rotates to a freshly announced /20 for the same pair
// — an oversized population degrades into more prefixes, never a panic.
func (a *allocator) Alloc(asn ipmeta.ASN, country ipmeta.CountryCode) netip.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.ensureBlock(asn, country)
	if b.next >= 1<<12-2 {
		b = a.carveBlock(blockKey{asn, country})
	}
	base := b.prefix.Addr().As4()
	n := b.next
	b.next++
	return netip.AddrFrom4([4]byte{base[0], base[1], base[2] + byte(n>>8), byte(n)})
}

// drainErrors hands the journaled allocator failures to the caller and
// clears the journal.
func (a *allocator) drainErrors() []error {
	a.mu.Lock()
	defer a.mu.Unlock()
	errs := a.errs
	a.errs = nil
	return errs
}

// RegisterProvider makes every (ASN, country) block of the provider
// available and records the organization mapping.
func (a *allocator) RegisterProvider(p Provider) {
	a.meta.Orgs.AddOrg(ipmeta.Org{ID: p.Org, Name: p.Name})
	a.meta.Orgs.Assign(p.ASN, p.Name, p.Org)
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, country := range p.Countries {
		a.ensureBlock(p.ASN, country)
	}
}
