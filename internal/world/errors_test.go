package world

import (
	"errors"
	"testing"
)

// minimalWorld builds an empty substrate (no populations, no campaigns)
// for exercising the error paths directly.
func minimalWorld(t *testing.T) *World {
	t.Helper()
	w := New(Config{Seed: 1})
	if len(w.Errors) != 0 {
		t.Fatalf("empty world reported errors: %v", w.Errors)
	}
	return w
}

// TestBadVictimRowCollected stages rows a real campaign table could be
// corrupted into — unparseable month, unparseable IP — and requires
// buildVictim to refuse them with ErrBadVictimRow instead of panicking,
// leaving no ground-truth entry behind.
func TestBadVictimRowCollected(t *testing.T) {
	good := HijackedRows[0]
	cases := []struct {
		name   string
		mutate func(*VictimRow)
	}{
		{"bad-month", func(r *VictimRow) { r.Month = "Smarch'21" }},
		{"bad-ip", func(r *VictimRow) { r.IP = "not-an-ip" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := minimalWorld(t)
			w.nsGroups = map[string]*nsGroupInfo{} // buildVictim preconditions
			row := good
			tc.mutate(&row)
			err := w.buildVictim(0, row)
			if !errors.Is(err, ErrBadVictimRow) {
				t.Fatalf("err = %v, want ErrBadVictimRow", err)
			}
			if w.Truth[row.Domain] != nil {
				t.Error("refused row still entered ground truth")
			}
		})
	}
}

// TestCampaignSurvivesBadRow corrupts one row of a full campaign world and
// requires the rest of the campaign to stage normally, with the failure
// surfaced in World.Errors.
func TestCampaignSurvivesBadRow(t *testing.T) {
	orig := HijackedRows[0]
	HijackedRows[0].Month = "Smarch'21"
	defer func() { HijackedRows[0] = orig }()

	cfg := DefaultConfig()
	cfg.StableDomains, cfg.TransitionDomains, cfg.NoisyDomains, cfg.BenignTransients = 4, 0, 0, 0
	w := New(cfg)
	if len(w.Errors) != 1 || !errors.Is(w.Errors[0], ErrBadVictimRow) {
		t.Fatalf("Errors = %v, want exactly the bad row", w.Errors)
	}
	if w.Truth[orig.Domain] != nil {
		t.Error("bad row entered ground truth")
	}
	if w.Truth[HijackedRows[1].Domain] == nil {
		t.Error("later rows did not stage")
	}
}

// TestAllocatorRotatesExhaustedBlock drains a /20 past its capacity and
// requires fresh, unique addresses from a rotated block instead of the old
// exhaustion panic.
func TestAllocatorRotatesExhaustedBlock(t *testing.T) {
	w := minimalWorld(t)
	seen := make(map[string]bool)
	const n = 1<<12 + 50 // past one /20
	for i := 0; i < n; i++ {
		ip := w.alloc.Alloc(64600, "US")
		if !ip.IsValid() {
			t.Fatalf("alloc %d returned invalid address", i)
		}
		if seen[ip.String()] {
			t.Fatalf("alloc %d returned duplicate %s", i, ip)
		}
		seen[ip.String()] = true
	}
	if errs := w.alloc.drainErrors(); len(errs) != 0 {
		t.Fatalf("rotation journaled errors: %v", errs)
	}
}
