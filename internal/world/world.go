// Package world generates the synthetic Internet the study runs against:
// hosting providers and IP space, a live DNS hierarchy with root and TLD
// zones, certificate authorities with CT logging, passive-DNS sensors,
// benign domain populations (stable, transitioning, noisy, and
// benign-transient), and attacker campaigns replaying the paper's Tables 2
// and 3 against that substrate.
//
// The world is the study's ground truth. Everything the detection pipeline
// consumes — weekly scan records, pDNS rows, CT entries — is derived from
// it through the same partial, lossy observation channels the paper's data
// sets have (weekly scan cadence, pDNS coverage gaps, CT submission).
package world

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"retrodns/internal/ca"
	"retrodns/internal/ctlog"
	"retrodns/internal/dnscore"
	"retrodns/internal/dnssecmon"
	"retrodns/internal/dnsserver"
	"retrodns/internal/ipmeta"
	"retrodns/internal/netsim"
	"retrodns/internal/pdns"
	"retrodns/internal/registrar"
	"retrodns/internal/scanner"
	"retrodns/internal/simtime"
	"retrodns/internal/x509lite"
	"retrodns/internal/zonefiles"
)

// Config parameterizes world generation. The zero value of a count keeps
// that population empty.
type Config struct {
	// Seed drives every random choice; equal seeds give equal worlds.
	Seed int64
	// Benign population sizes (paper proportions: 96.5% stable, 2.95%
	// transition, 0.13% transient, 0.35% noisy).
	StableDomains     int
	TransitionDomains int
	NoisyDomains      int
	// BenignTransients are domains with transient deployments that have
	// innocent explanations (same org, same country, non-sensitive name)
	// — the shortlist must prune them.
	BenignTransients int
	// FlakyFraction of stable hosts miss a noticeable share of scans.
	FlakyFraction float64
	// PDNSCoverage is the sensor's per-resolution-path coverage (0..1].
	PDNSCoverage float64
	// Campaigns enables the paper's Table 2/3 attack replay.
	Campaigns bool
	// DNSSEC signs the delegation chain for a third of the campaign
	// victims and monitors their validation status daily, enabling the
	// paper's §7.1 downgrade signal.
	DNSSEC bool
	// RegistryLockAll enables the §7.2 counterfactual: every victim
	// domain is registry-locked, so registrar-channel attacks (T1, T1*,
	// T2, P-NS) fail while DNS-provider-level attacks (P-IP) and proxy
	// stagings proceed.
	RegistryLockAll bool
	// ScanCadenceDays overrides the weekly scan cadence (paper footnote
	// 9: Censys moved to daily scans after the study). Zero means weekly.
	ScanCadenceDays int
	// CDNDomains adds domains whose names share one multi-SAN certificate
	// served from shared infrastructure — the CDN-style noise real scan
	// data is full of. They must classify stable.
	CDNDomains int
}

// DefaultConfig returns a laptop-scale world with the paper's population
// proportions and all campaigns.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		StableDomains:     2000,
		TransitionDomains: 61, // ≈2.95% of ~2070 benign domains
		NoisyDomains:      8,  // ≈0.35%
		BenignTransients:  6,  // transient-but-benign, pruned by §4.3
		FlakyFraction:     0.05,
		PDNSCoverage:      0.85,
		Campaigns:         true,
		DNSSEC:            true,
	}
}

// GroundTruth records what actually happened to a domain, for evaluating
// the pipeline (the paper has no such luxury).
type GroundTruth struct {
	Domain  dnscore.Name
	Kind    string // "stable", "transition", "noisy", "benign-transient", "hijacked", "targeted"
	Method  string // expected identification route for attack victims
	Sector  string // organization sector (Tables 7/8)
	Org     string // organization description
	Country ipmeta.CountryCode
}

// World is the assembled simulation.
type World struct {
	Cfg Config

	Internet  *netsim.Internet
	Meta      *ipmeta.Directory
	Trust     *x509lite.TrustStore
	CT        *ctlog.Log
	PDNSDB    *pdns.DB
	Sensor    *pdns.Sensor
	Transport *dnsserver.MemTransport
	Resolver  *dnsserver.Resolver

	// CAs by display name.
	LetsEncrypt *ca.CA
	Comodo      *ca.CA
	DigiCert    *ca.CA
	InternalCA  *x509lite.SigningKey

	Truth map[dnscore.Name]*GroundTruth
	// SecLog records daily DNSSEC validation status for signed victim
	// domains (the §7.1 monitoring signal).
	SecLog *dnssecmon.Log
	// ZoneFiles archives daily delegation snapshots for the TLDs the
	// paper had zone-file access to (com, se, net).
	ZoneFiles *zonefiles.Archive
	// Registrar is the (single, Sea-Turtle-style compromised) registrar
	// sponsoring every victim domain; Registries hold per-TLD databases.
	Registrar *registrar.Registrar
	// Prevented lists domains whose attacks Registry Lock blocked.
	Prevented []dnscore.Name
	// Errors collects failures of scheduled attack steps; a healthy run
	// leaves it empty.
	Errors []error

	alloc   *allocator
	rng     *rand.Rand
	rootIP  netip.Addr
	rootSrv *dnsserver.Server
	root    *dnscore.Zone
	tlds    map[dnscore.Name]*tldInfo

	nsGroups         map[string]*nsGroupInfo
	nationalISP      map[ipmeta.CountryCode]ipmeta.ASN
	attackerPrefixes map[netip.Prefix]bool
	maliciousCerts   map[dnscore.Name]*x509lite.Certificate
	portRR           map[netip.Addr]int

	rootKey    *dnscore.ZoneKey
	tldKeys    map[dnscore.Name]*dnscore.ZoneKey
	zoneKeys   map[dnscore.Name]*dnscore.ZoneKey
	secTrack   []trackedQuery
	registries map[dnscore.Name]*registrar.Registry
	prevented  map[dnscore.Name]bool

	// events holds zone mutations and issuance actions by day; evening
	// events run after the day's queries and zone-file snapshots, so a
	// same-day switch-and-revert is visible to passive DNS but not to the
	// daily zone files (paper §5.3).
	events        map[simtime.Date][]func()
	eveningEvents map[simtime.Date][]func()
	// tracked names are resolved daily to feed passive DNS.
	tracked []trackedQuery

	certSerial uint64

	// clockDone marks that RunClock has advanced the daily clock, making
	// repeat Run/RunClock calls no-ops on the event schedule.
	clockDone bool
}

type tldInfo struct {
	zone *dnscore.Zone
	ip   netip.Addr
	srv  *dnsserver.Server
}

type trackedQuery struct {
	name dnscore.Name
	typ  dnscore.Type
}

// New assembles a world per the config (without running the clock; call
// Run afterwards).
func New(cfg Config) *World {
	if cfg.PDNSCoverage <= 0 {
		cfg.PDNSCoverage = 0.85
	}
	w := &World{
		Cfg:       cfg,
		Internet:  netsim.NewInternet(),
		Meta:      ipmeta.NewDirectory(),
		Trust:     x509lite.NewTrustStore(),
		CT:        ctlog.NewLog("sim-ct", 800_000_000),
		PDNSDB:    pdns.NewDB(),
		Transport: dnsserver.NewMemTransport(),
		Truth:     make(map[dnscore.Name]*GroundTruth),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		tlds:      make(map[dnscore.Name]*tldInfo),
		events:    make(map[simtime.Date][]func()),

		nationalISP:      make(map[ipmeta.CountryCode]ipmeta.ASN),
		attackerPrefixes: make(map[netip.Prefix]bool),
		maliciousCerts:   make(map[dnscore.Name]*x509lite.Certificate),
		portRR:           make(map[netip.Addr]int),

		SecLog:    dnssecmon.NewLog(),
		ZoneFiles: zonefiles.NewArchive("com", "se", "net"),
		tldKeys:   make(map[dnscore.Name]*dnscore.ZoneKey),
		zoneKeys:  make(map[dnscore.Name]*dnscore.ZoneKey),

		registries:    make(map[dnscore.Name]*registrar.Registry),
		prevented:     make(map[dnscore.Name]bool),
		eveningEvents: make(map[simtime.Date][]func()),
	}
	w.Registrar = registrar.NewRegistrar("sim-registrar", func(tld dnscore.Name) (*registrar.Registry, bool) {
		r, ok := w.registries[tld]
		return r, ok
	})
	w.alloc = newAllocator(w.Meta)
	for _, p := range AttackerProviders {
		w.alloc.RegisterProvider(p)
	}
	for _, p := range CloudSiblings {
		w.alloc.RegisterProvider(p)
	}

	// DNS root.
	w.alloc.RegisterProvider(Provider{ASN: 64600, Name: "Registry Services", Org: "registries", Countries: cc("US")})
	w.rootIP = w.alloc.Alloc(64600, "US")
	w.root = dnscore.NewZone("")
	w.rootSrv = dnsserver.NewServer()
	w.rootSrv.AddZone(w.root)
	w.Transport.Register(w.rootIP, w.rootSrv)
	w.Resolver = dnsserver.NewResolver(w.Transport, []netip.Addr{w.rootIP})

	// Passive DNS sensor on the resolver path.
	w.Sensor = pdns.NewSensor(w.PDNSDB, cfg.PDNSCoverage, uint64(cfg.Seed)+7)
	w.Resolver.AddObserver(w.Sensor.Observer())

	// Certificate authorities. Let's Encrypt and Comodo are the paper's
	// two free DV issuers; DigiCert stands in for the paid OV issuers of
	// legitimate long-lived deployments; the internal CA models
	// enterprise CAs whose certificates never reach CT.
	w.LetsEncrypt = ca.New(ca.Config{Name: "Let's Encrypt", KeyID: "le-x3", Seed: cfg.Seed + 101, ValidityDays: 90}, w.Resolver, w.CT)
	w.Comodo = ca.New(ca.Config{Name: "Comodo", KeyID: "comodo-rsa", Seed: cfg.Seed + 102, ValidityDays: 90, PublishesCRL: true}, w.Resolver, w.CT)
	w.DigiCert = ca.New(ca.Config{Name: "DigiCert Inc", KeyID: "digicert-g2", Seed: cfg.Seed + 103, ValidityDays: 730}, w.Resolver, w.CT)
	w.InternalCA = x509lite.NewSigningKey("internal-corp", cfg.Seed+104)
	for _, k := range []*x509lite.SigningKey{w.LetsEncrypt.Key(), w.Comodo.Key(), w.DigiCert.Key()} {
		w.Trust.Include(k, x509lite.ProgramApple, x509lite.ProgramMicrosoft, x509lite.ProgramMozilla)
	}
	w.Trust.Include(w.InternalCA) // registered, browser-trusted nowhere

	if cfg.StableDomains > 0 || cfg.TransitionDomains > 0 || cfg.NoisyDomains > 0 || cfg.BenignTransients > 0 || cfg.CDNDomains > 0 {
		w.buildPopulation()
	}
	if cfg.Campaigns {
		w.buildCampaigns()
	}
	if cfg.DNSSEC {
		w.finalizeDNSSEC()
	}
	w.Errors = append(w.Errors, w.alloc.drainErrors()...)
	return w
}

// finalizeDNSSEC signs the root and every TLD that hosts a signed victim,
// publishing the DS chain and installing the trust anchor. It runs once,
// after all zones and delegations exist.
func (w *World) finalizeDNSSEC() {
	w.rootKey = dnscore.NewZoneKey("", w.Cfg.Seed+500)
	for tld, key := range w.tldKeys {
		info := w.tlds[tld]
		if err := dnscore.SignZone(info.zone, key); err != nil {
			w.Errors = append(w.Errors, err)
			continue
		}
		w.root.MustAdd(key.DS())
	}
	if err := dnscore.SignZone(w.root, w.rootKey); err != nil {
		w.Errors = append(w.Errors, err)
		return
	}
	w.Resolver.SetTrustAnchor(w.rootKey.DNSKEY())
}

// signVictimZone signs a victim's authoritative zone and publishes its DS
// in the TLD, creating the TLD key on first use. The TLD zone itself is
// signed later by finalizeDNSSEC.
func (w *World) signVictimZone(domain dnscore.Name, zone *dnscore.Zone) {
	key := dnscore.NewZoneKey(domain, w.Cfg.Seed+600)
	if err := dnscore.SignZone(zone, key); err != nil {
		w.Errors = append(w.Errors, err)
		return
	}
	w.zoneKeys[domain] = key
	tld := domain.TLD()
	if _, ok := w.tldKeys[tld]; !ok {
		w.tldKeys[tld] = dnscore.NewZoneKey(tld, w.Cfg.Seed+550)
	}
	w.tlds[tld].zone.MustAdd(key.DS())
}

// resignTLD refreshes a TLD zone's signatures after a registry-level
// mutation (delegation or DS change), as the registry's signer would.
func (w *World) resignTLD(tld dnscore.Name) {
	key, ok := w.tldKeys[tld]
	if !ok {
		return // unsigned TLD
	}
	if err := dnscore.SignZone(w.tlds[tld].zone, key); err != nil {
		w.Errors = append(w.Errors, err)
	}
}

// resignVictim refreshes a victim zone's signatures after a DNS-provider-
// level mutation — the attacker who owns the provider account can use the
// provider's signing key, so DNSSEC offers no protection on that path.
func (w *World) resignVictim(domain dnscore.Name, zone *dnscore.Zone) {
	key, ok := w.zoneKeys[domain]
	if !ok {
		return
	}
	if err := dnscore.SignZone(zone, key); err != nil {
		w.Errors = append(w.Errors, err)
	}
}

// ensureTLD creates the TLD zone, its server, and the root delegation.
func (w *World) ensureTLD(tld dnscore.Name) *tldInfo {
	if info, ok := w.tlds[tld]; ok {
		return info
	}
	ip := w.alloc.Alloc(64600, "US")
	zone := dnscore.NewZone(tld)
	zone.MustAdd(dnscore.SOA(tld, 86400, "ns.registry."+tld, 1))
	srv := dnsserver.NewServer()
	srv.AddZone(zone)
	w.Transport.Register(ip, srv)
	nsName := dnscore.MustParseName("ns.registry." + string(tld))
	w.root.MustAdd(dnscore.NS(tld, 86400, nsName))
	w.root.MustAdd(dnscore.A(nsName, 86400, ip))
	zone.MustAdd(dnscore.A(nsName, 86400, ip)) // in-zone glue for self
	info := &tldInfo{zone: zone, ip: ip, srv: srv}
	w.tlds[tld] = info
	// Each TLD zone is published by a registry database; registry-channel
	// mutations re-sign the zone when DNSSEC is in play.
	reg := registrar.NewRegistry(tld, zone)
	reg.OnChange(func() { w.resignTLD(tld) })
	w.registries[tld] = reg
	return info
}

// hostZone creates an authoritative zone for a domain on a dedicated
// nameserver host and delegates it from its TLD. Returns the zone and the
// nameserver name and address.
func (w *World) hostZone(domain dnscore.Name, nsASN ipmeta.ASN, nsCC ipmeta.CountryCode) (*dnscore.Zone, dnscore.Name, netip.Addr) {
	w.ensureTLD(domain.TLD())
	nsIP := w.alloc.Alloc(nsASN, nsCC)
	nsName := domain.Child("ns1")
	zone := dnscore.NewZone(domain)
	zone.MustAdd(dnscore.SOA(domain, 3600, nsName, 1))
	zone.MustAdd(dnscore.NS(domain, 3600, nsName))
	zone.MustAdd(dnscore.A(nsName, 3600, nsIP))
	srv := dnsserver.NewServer()
	srv.AddZone(zone)
	w.Transport.Register(nsIP, srv)
	// Registration flows through the registry, like any real domain.
	if err := w.registries[domain.TLD()].Register(domain, w.Registrar.ID(),
		[]dnscore.Name{nsName}, map[dnscore.Name]string{nsName: nsIP.String()}); err != nil {
		w.Errors = append(w.Errors, err)
	}
	return zone, nsName, nsIP
}

// at schedules fn to run on the morning of the given day.
func (w *World) at(d simtime.Date, fn func()) {
	if d < simtime.StudyStart {
		d = simtime.StudyStart
	}
	if d >= simtime.StudyEnd {
		return
	}
	w.events[d] = append(w.events[d], fn)
}

// atEvening schedules fn after the day's client traffic and zone-file
// snapshot — the slot attackers use to revert changes before the daily
// zone file catches them.
func (w *World) atEvening(d simtime.Date, fn func()) {
	if d < simtime.StudyStart {
		d = simtime.StudyStart
	}
	if d >= simtime.StudyEnd {
		return
	}
	w.eveningEvents[d] = append(w.eveningEvents[d], fn)
}

// track resolves (name, typ) every day to feed the pDNS sensor —
// modelling the steady client traffic that actively-used domains receive.
func (w *World) track(name dnscore.Name, typ dnscore.Type) {
	w.tracked = append(w.tracked, trackedQuery{name, typ})
}

// nextSerial hands out globally unique certificate serial hints for manual
// issuance bookkeeping.
func (w *World) nextSerial() uint64 {
	w.certSerial++
	return w.certSerial
}

// issueInternal creates a non-browser-trusted certificate from the
// enterprise CA (never logged to CT).
func (w *World) issueInternal(at simtime.Date, days int, names ...dnscore.Name) *x509lite.Certificate {
	cert := &x509lite.Certificate{
		Serial: w.nextSerial(), Subject: names[0], SANs: names,
		Issuer: "Internal Corp CA", NotBefore: at, NotAfter: at.Add(simtime.Duration(days)),
		Method: x509lite.ValidationInternal,
	}
	w.InternalCA.Sign(cert)
	return cert
}

// Run executes the study clock: every day, apply scheduled events and
// resolve the tracked names (feeding pDNS); afterwards, run the weekly
// scanner over the whole window and return the assembled dataset.
func (w *World) Run() *scanner.Dataset {
	return w.RunShards(scanner.DefaultShards)
}

// RunShards is Run with an explicit shard count for the accumulating
// dataset (see scanner.NewDatasetShards).
func (w *World) RunShards(shards int) *scanner.Dataset {
	w.RunClock()
	ds := scanner.NewDatasetShards(shards)
	w.Scanner().RunStudyEveryInto(ds, simtime.StudyStart, simtime.StudyEnd, w.scanCadence())
	return ds
}

// RunClock advances the daily simulation clock over the whole study
// window without scanning, so a caller can afterwards replay the scan
// series itself (ScanDates + Scanner().ScanWeek) — the shape the
// incremental -follow mode consumes. Idempotent: the clock runs once.
func (w *World) RunClock() {
	if w.clockDone {
		return
	}
	w.clockDone = true
	for day := simtime.StudyStart; day < simtime.StudyEnd; day++ {
		w.Sensor.SetDate(day)
		for _, fn := range w.events[day] {
			fn()
		}
		for _, q := range w.tracked {
			// Errors are expected for names that are intentionally
			// unresolvable at times; the sensor only sees successes.
			_, _ = w.Resolver.Resolve(q.name, q.typ)
		}
		for _, q := range w.secTrack {
			// The DNSSEC monitor validates the chain daily for signed
			// victim domains; bogus answers still record their status.
			if _, status, err := w.Resolver.ResolveSecure(q.name, q.typ); err == nil || status == dnscore.StatusBogus {
				w.SecLog.Record(q.name.RegisteredDomain(), day, status)
			}
		}
		for _, fn := range w.eveningEvents[day] {
			fn()
		}
		// Nightly zone-file snapshots for the covered TLDs, taken after
		// the evening window — which is exactly why same-evening changes
		// never appear in them (§5.3).
		for tld, info := range w.tlds {
			if w.ZoneFiles.CoversTLD(tld) {
				w.ZoneFiles.Snapshot(tld, day, zonefiles.DelegationsOf(info.zone))
			}
		}
	}
}

// Scanner returns a scanner over the world's hosting plane with its
// annotation sources, for callers replaying the scan series themselves.
func (w *World) Scanner() *scanner.Scanner {
	return scanner.New(w.Internet, w.Meta, w.Trust, w.CT)
}

// scanCadence resolves the configured scan cadence in days.
func (w *World) scanCadence() int {
	if w.Cfg.ScanCadenceDays > 0 {
		return w.Cfg.ScanCadenceDays
	}
	return simtime.DaysPerWeek
}

// ScanDates lists the scan dates Run would cover at the configured
// cadence, in order — the replay schedule for incremental ingest.
func (w *World) ScanDates() []simtime.Date {
	var out []simtime.Date
	for d := simtime.StudyStart; d < simtime.StudyEnd; d += simtime.Date(w.scanCadence()) {
		out = append(out, d)
	}
	return out
}

// MaliciousCerts returns the certificates attackers obtained, keyed by
// victim domain — ground truth for the Table 9 reproduction.
func (w *World) MaliciousCerts() map[dnscore.Name]*x509lite.Certificate {
	out := make(map[dnscore.Name]*x509lite.Certificate, len(w.maliciousCerts))
	for d, c := range w.maliciousCerts {
		out[d] = c
	}
	return out
}

// TruthList returns the ground truth entries sorted by domain.
func (w *World) TruthList() []*GroundTruth {
	out := make([]*GroundTruth, 0, len(w.Truth))
	for _, t := range w.Truth {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// ExpectedVictims returns the domains whose ground truth is hijacked or
// targeted, keyed by kind.
func (w *World) ExpectedVictims() (hijacked, targeted []dnscore.Name) {
	for _, t := range w.TruthList() {
		switch t.Kind {
		case "hijacked":
			hijacked = append(hijacked, t.Domain)
		case "targeted":
			targeted = append(targeted, t.Domain)
		}
	}
	return hijacked, targeted
}

// Summary describes the generated world.
func (w *World) Summary() string {
	h, t := w.ExpectedVictims()
	return fmt.Sprintf("world: %d domains (%d hijacked, %d targeted ground truth), %d hosts, CT entries=%d",
		len(w.Truth), len(h), len(t), w.Internet.Hosts(), w.CT.Size())
}
