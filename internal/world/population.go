package world

import (
	"fmt"
	"net/netip"

	"retrodns/internal/dnscore"
	"retrodns/internal/ipmeta"
	"retrodns/internal/netsim"
	"retrodns/internal/simtime"
	"retrodns/internal/x509lite"
)

// hostingCountries is the country pool for generic hosting providers.
var hostingCountries = []ipmeta.CountryCode{
	"US", "DE", "NL", "FR", "GB", "SG", "JP", "IN", "BR", "AU", "CA", "IT", "ES", "SE", "PL",
}

var benignTLDs = []string{"com", "net", "org", "io", "co"}

// buildPopulation creates the benign domain populations: the overwhelming
// majority of the Internet that the pipeline must classify as stable,
// transition, or noisy — and the benign transients it must prune.
func (w *World) buildPopulation() {
	// Twenty generic hosting providers.
	var pool []Provider
	for i := 0; i < 20; i++ {
		p := Provider{
			ASN:       ipmeta.ASN(70001 + i),
			Name:      fmt.Sprintf("Hosting-%02d", i),
			Org:       ipmeta.OrgID(fmt.Sprintf("hosting-%02d", i)),
			Countries: cc(hostingCountries[i%len(hostingCountries)], hostingCountries[(i+4)%len(hostingCountries)]),
		}
		w.alloc.RegisterProvider(p)
		pool = append(pool, p)
	}

	for i := 0; i < w.Cfg.StableDomains; i++ {
		w.addStableDomain(i, pool)
	}
	for i := 0; i < w.Cfg.TransitionDomains; i++ {
		w.addTransitionDomain(i, pool)
	}
	for i := 0; i < w.Cfg.NoisyDomains; i++ {
		w.addNoisyDomain(i, pool)
	}
	for i := 0; i < w.Cfg.BenignTransients; i++ {
		w.addBenignTransient(i, pool)
	}
	if w.Cfg.CDNDomains > 0 {
		w.addCDNPopulation(pool)
	}
}

// addCDNPopulation models shared-infrastructure hosting: one certificate
// carrying many customers' names, served from a handful of edge IPs in one
// provider. Every covered domain observes the same records, so all of them
// must classify stable — multi-SAN certificates are the most common source
// of cross-domain record sharing in real scan data.
func (w *World) addCDNPopulation(pool []Provider) {
	p := pool[0]
	country := p.Countries[0]
	const sansPerCert = 25
	for base := 0; base < w.Cfg.CDNDomains; base += sansPerCert {
		n := sansPerCert
		if base+n > w.Cfg.CDNDomains {
			n = w.Cfg.CDNDomains - base
		}
		names := make([]dnscore.Name, 0, n*2)
		for i := 0; i < n; i++ {
			domain := w.benignName("cdn", base+i)
			names = append(names, domain.Child("www"), domain)
			w.Truth[domain] = &GroundTruth{Domain: domain, Kind: "stable", Country: country}
		}
		// Two edge IPs in the same AS serve the shared certificate, with
		// 90-day rollovers, for the whole study.
		for e := 0; e < 2; e++ {
			ip := w.alloc.Alloc(p.ASN, country)
			w.provisionService(endpointSpec{addr: ip, ports: []uint16{443}}, names, "Let's Encrypt", 90, simtime.StudyStart, 0)
		}
	}
}

func (w *World) pick(p Provider) ipmeta.CountryCode {
	return p.Countries[w.rng.Intn(len(p.Countries))]
}

func (w *World) benignName(kind string, i int) dnscore.Name {
	tld := benignTLDs[i%len(benignTLDs)]
	return dnscore.MustParseName(fmt.Sprintf("%s%04d.%s", kind, i, tld))
}

// provisionService binds a certificate chain to an endpoint for the whole
// study: long-lived certificates roll over at expiry, like the paper's
// pattern S2.
func (w *World) provisionService(ip endpointSpec, names []dnscore.Name, issuer string, lifetimeDays int, from, to simtime.Date) {
	if to <= 0 {
		to = simtime.StudyEnd
	}
	for start := from; start < to; start = start.Add(simtime.Duration(lifetimeDays)) {
		var cert *x509lite.Certificate
		switch issuer {
		case "internal":
			cert = w.issueInternal(start, lifetimeDays, names...)
		case "Let's Encrypt":
			cert, _ = w.LetsEncrypt.IssueManual(start, lifetimeDays, names...)
		case "Comodo":
			cert, _ = w.Comodo.IssueManual(start, lifetimeDays, names...)
		default:
			cert, _ = w.DigiCert.IssueManual(start, lifetimeDays, names...)
		}
		end := start.Add(simtime.Duration(lifetimeDays))
		if end > to {
			end = to
		}
		for _, port := range ip.ports {
			_ = w.Internet.Provision(netsim.Endpoint{Addr: ip.addr, Port: port}, cert, start, end)
		}
	}
}

type endpointSpec struct {
	addr  netip.Addr
	ports []uint16
}

func (w *World) addStableDomain(i int, pool []Provider) {
	p := pool[w.rng.Intn(len(pool))]
	country := w.pick(p)
	domain := w.benignName("stable", i)
	ip := w.alloc.Alloc(p.ASN, country)

	names := []dnscore.Name{domain.Child("www"), domain}
	ports := []uint16{443}
	if w.rng.Float64() < 0.4 {
		names = append(names, domain.Child("mail"))
		ports = append(ports, 993)
	}
	issuer, lifetime := "DigiCert Inc", 730
	switch w.rng.Intn(10) {
	case 0, 1, 2:
		issuer, lifetime = "Let's Encrypt", 90
	case 3:
		issuer, lifetime = "internal", 365
	}
	w.provisionService(endpointSpec{addr: ip, ports: ports}, names, issuer, lifetime, simtime.StudyStart, 0)
	if w.rng.Float64() < w.Cfg.FlakyFraction {
		w.Internet.SetFlakiness(ip, 0.3, uint64(w.Cfg.Seed)+uint64(i))
	}
	w.Truth[domain] = &GroundTruth{Domain: domain, Kind: "stable", Country: country}
}

func (w *World) addTransitionDomain(i int, pool []Provider) {
	a := pool[w.rng.Intn(len(pool))]
	b := pool[w.rng.Intn(len(pool))]
	for b.ASN == a.ASN {
		b = pool[w.rng.Intn(len(pool))]
	}
	domain := w.benignName("mover", i)
	// Switch providers at a random date in the middle 70% of the study.
	switchAt := simtime.Date(float64(simtime.StudyDays) * (0.15 + 0.7*w.rng.Float64()))
	ipA := w.alloc.Alloc(a.ASN, w.pick(a))
	ipB := w.alloc.Alloc(b.ASN, w.pick(b))
	names := []dnscore.Name{domain.Child("www"), domain}
	w.provisionService(endpointSpec{addr: ipA, ports: []uint16{443}}, names, "DigiCert Inc", 730, simtime.StudyStart, switchAt.Add(simtime.DaysPerWeek))
	w.provisionService(endpointSpec{addr: ipB, ports: []uint16{443}}, names, "Let's Encrypt", 90, switchAt, 0)
	w.Truth[domain] = &GroundTruth{Domain: domain, Kind: "transition"}
}

func (w *World) addNoisyDomain(i int, pool []Provider) {
	domain := w.benignName("churn", i)
	names := []dnscore.Name{domain.Child("www"), domain}
	// Hop to a new provider every 3–7 weeks for the whole study.
	for start := simtime.StudyStart; start < simtime.StudyEnd; {
		p := pool[w.rng.Intn(len(pool))]
		ip := w.alloc.Alloc(p.ASN, w.pick(p))
		dur := simtime.Duration((3 + w.rng.Intn(5)) * 7)
		end := start.Add(dur)
		w.provisionService(endpointSpec{addr: ip, ports: []uint16{443}}, names, "Let's Encrypt", 90, start, end)
		start = end
	}
	w.Truth[domain] = &GroundTruth{Domain: domain, Kind: "noisy"}
}

// addBenignTransient creates domains with innocuous transient deployments
// that exercise each §4.3 pruning rule.
func (w *World) addBenignTransient(i int, pool []Provider) {
	domain := w.benignName("flash", i)
	scans := simtime.ScansInPeriod(simtime.Period(1 + i%7))
	tDate := scans[5+w.rng.Intn(len(scans)-10)]

	switch i % 3 {
	case 0:
		// Same organization: stable on AMAZON-02 in DE, transient on
		// AMAZON-AES in US. Pruned by the as2org rule.
		stableIP := w.alloc.Alloc(16509, "DE")
		names := []dnscore.Name{domain.Child("mail"), domain}
		w.provisionService(endpointSpec{addr: stableIP, ports: []uint16{443, 993}}, names, "DigiCert Inc", 730, simtime.StudyStart, 0)
		tIP := w.alloc.Alloc(14618, "US")
		tCert, _ := w.LetsEncrypt.IssueManual(tDate-1, 90, domain.Child("mail"))
		_ = w.Internet.Provision(netsim.Endpoint{Addr: tIP, Port: 443}, tCert, tDate-1, tDate+8)
	case 1:
		// Same country: transient in a different ASN but the same country
		// as the stable deployment. Pruned by geolocation.
		p := pool[i%len(pool)]
		country := p.Countries[0]
		stableIP := w.alloc.Alloc(p.ASN, country)
		names := []dnscore.Name{domain.Child("mail"), domain}
		w.provisionService(endpointSpec{addr: stableIP, ports: []uint16{443, 993}}, names, "DigiCert Inc", 730, simtime.StudyStart, 0)
		q := pool[(i+3)%len(pool)]
		var tIP netip.Addr
		hasCountry := false
		for _, qc := range q.Countries {
			if qc == country {
				hasCountry = true
			}
		}
		if !hasCountry {
			q.Countries = append(q.Countries, country)
			w.alloc.RegisterProvider(q)
		}
		tIP = w.alloc.Alloc(q.ASN, country)
		tCert, _ := w.LetsEncrypt.IssueManual(tDate-1, 90, domain.Child("mail"))
		_ = w.Internet.Provision(netsim.Endpoint{Addr: tIP, Port: 443}, tCert, tDate-1, tDate+8)
	default:
		// Non-sensitive name, different AS and country: survives the
		// geo/org prunes but carries no credential-bearing subdomain;
		// inspection finds no corroborating activity.
		p := pool[i%len(pool)]
		stableIP := w.alloc.Alloc(p.ASN, "US")
		names := []dnscore.Name{domain.Child("www"), domain}
		w.provisionService(endpointSpec{addr: stableIP, ports: []uint16{443}}, names, "DigiCert Inc", 730, simtime.StudyStart, 0)
		tIP := w.alloc.Alloc(24940, "DE") // Hetzner
		tCert, _ := w.LetsEncrypt.IssueManual(tDate-1, 90, domain.Child("www"))
		_ = w.Internet.Provision(netsim.Endpoint{Addr: tIP, Port: 443}, tCert, tDate-1, tDate+8)
	}
	w.Truth[domain] = &GroundTruth{Domain: domain, Kind: "benign-transient"}
}
