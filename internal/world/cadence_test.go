package world

import (
	"testing"

	"retrodns/internal/core"
)

// TestDailyScanCadence runs the footnote-9 experiment: with daily instead
// of weekly scans, detection quality holds (recall/precision unchanged)
// while attacker infrastructure becomes far more observable — certificates
// that appeared in one weekly scan appear in about seven daily ones.
func TestDailyScanCadence(t *testing.T) {
	if testing.Short() {
		t.Skip("full study simulation")
	}
	cfg := smallConfig()
	cfg.StableDomains = 20
	cfg.ScanCadenceDays = 1
	w := New(cfg)
	res, ds := runPipelineDS(t, w)

	expHijacked, expTargeted := w.ExpectedVictims()
	if len(res.Hijacked) != len(expHijacked) {
		t.Errorf("daily cadence hijacked = %d, want %d", len(res.Hijacked), len(expHijacked))
	}
	if len(res.Targeted) != len(expTargeted) {
		t.Errorf("daily cadence targeted = %d, want %d", len(res.Targeted), len(expTargeted))
	}

	stats := core.Observability(res.Hijacked, ds, w.PDNSDB, w.CT)
	// With daily scans a one-week attacker window is caught ~7 times:
	// almost nothing is "seen in exactly one scan" anymore.
	if frac := stats.FracSeenInOneScan(); frac > 0.2 {
		t.Errorf("one-scan fraction %.2f under daily cadence; weekly cadence gives >0.5", frac)
	}
	// And certificates surface within a day or two of issuance.
	if frac := stats.FracCertSeenWithin8Days(); frac < 0.9 {
		t.Errorf("≤8-day fraction %.2f under daily cadence", frac)
	}
}

// TestCDNPopulation: domains sharing one multi-SAN certificate from shared
// edge infrastructure all classify stable and never reach the verdicts —
// the most common cross-domain record sharing in real scan data.
func TestCDNPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("full study simulation")
	}
	cfg := Config{Seed: 3, CDNDomains: 40, PDNSCoverage: 1}
	w := New(cfg)
	res := runPipeline(t, w)

	if len(res.Findings()) != 0 {
		t.Fatalf("CDN-only world produced findings: %v", res.Findings())
	}
	if res.Funnel.Domains != 40 {
		t.Fatalf("domains = %d, want 40", res.Funnel.Domains)
	}
	if got := res.Funnel.DomainCategories[core.CategoryStable]; got != 40 {
		t.Fatalf("stable CDN domains = %d, want 40 (%v)", got, res.Funnel.DomainCategories)
	}
}
