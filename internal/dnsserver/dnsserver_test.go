package dnsserver

import (
	"errors"
	"net/netip"
	"sync"
	"testing"

	"retrodns/internal/dnscore"
)

var (
	rootIP     = netip.MustParseAddr("198.41.0.4")
	kgTLDIP    = netip.MustParseAddr("92.62.64.1")
	infocomIP  = netip.MustParseAddr("92.62.65.2")
	attackerNS = netip.MustParseAddr("178.20.41.140")
	legitMail  = netip.MustParseAddr("92.62.65.20")
	evilMail   = netip.MustParseAddr("94.103.91.159")
)

// buildHierarchy wires a three-level DNS hierarchy into a MemTransport:
//
//	root (.)           → delegates kg
//	kg TLD             → delegates mfa.gov.kg and infocom.kg to ns1.infocom.kg
//	ns1.infocom.kg     → serves mfa.gov.kg and infocom.kg
//
// It returns the transport, the resolver, and the kg TLD zone (which the
// hijack tests mutate).
func buildHierarchy(t *testing.T) (*MemTransport, *Resolver, *dnscore.Zone) {
	t.Helper()
	transport := NewMemTransport()

	rootZone := dnscore.NewZone("")
	rootZone.MustAdd(dnscore.NS("kg", 86400, "ns.tld.kg"))
	rootZone.MustAdd(dnscore.A("ns.tld.kg", 86400, kgTLDIP))
	rootSrv := NewServer()
	rootSrv.AddZone(rootZone)
	transport.Register(rootIP, rootSrv)

	kgZone := dnscore.NewZone("kg")
	kgZone.MustAdd(dnscore.SOA("kg", 3600, "ns.tld.kg", 1))
	kgZone.MustAdd(dnscore.NS("mfa.gov.kg", 3600, "ns1.infocom.kg"))
	kgZone.MustAdd(dnscore.NS("infocom.kg", 3600, "ns1.infocom.kg"))
	kgZone.MustAdd(dnscore.A("ns1.infocom.kg", 3600, infocomIP))
	kgSrv := NewServer()
	kgSrv.AddZone(kgZone)
	transport.Register(kgTLDIP, kgSrv)

	mfaZone := dnscore.NewZone("mfa.gov.kg")
	mfaZone.MustAdd(dnscore.SOA("mfa.gov.kg", 3600, "ns1.infocom.kg", 1))
	mfaZone.MustAdd(dnscore.A("mail.mfa.gov.kg", 300, legitMail))
	mfaZone.MustAdd(dnscore.CNAME("webmail.mfa.gov.kg", 300, "mail.mfa.gov.kg"))
	infocomZone := dnscore.NewZone("infocom.kg")
	infocomZone.MustAdd(dnscore.A("ns1.infocom.kg", 3600, infocomIP))
	infocomSrv := NewServer()
	infocomSrv.AddZone(mfaZone)
	infocomSrv.AddZone(infocomZone)
	transport.Register(infocomIP, infocomSrv)

	return transport, NewResolver(transport, []netip.Addr{rootIP}), kgZone
}

func TestIterativeResolution(t *testing.T) {
	_, resolver, _ := buildHierarchy(t)
	addrs, err := resolver.ResolveA("mail.mfa.gov.kg")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != legitMail {
		t.Fatalf("resolved to %v, want %v", addrs, legitMail)
	}
}

func TestCNAMEChase(t *testing.T) {
	_, resolver, _ := buildHierarchy(t)
	rrs, err := resolver.Resolve("webmail.mfa.gov.kg", dnscore.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if rrs[0].Type != dnscore.TypeCNAME {
		t.Fatalf("first answer should be the CNAME, got %v", rrs[0])
	}
	last := rrs[len(rrs)-1]
	if last.Type != dnscore.TypeA || last.Addr() != legitMail {
		t.Fatalf("chain did not end at the A record: %v", rrs)
	}
}

func TestNXDomainAndNoData(t *testing.T) {
	_, resolver, _ := buildHierarchy(t)
	if _, err := resolver.ResolveA("nonexistent.mfa.gov.kg"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("want NXDOMAIN, got %v", err)
	}
	if _, err := resolver.ResolveTXT("mail.mfa.gov.kg"); !errors.Is(err, ErrNoData) {
		t.Errorf("want NoData, got %v", err)
	}
}

func TestHijackRedirectsResolution(t *testing.T) {
	transport, resolver, kgZone := buildHierarchy(t)

	// Attacker stands up their own nameserver answering for mfa.gov.kg.
	evilZone := dnscore.NewZone("mfa.gov.kg")
	evilZone.MustAdd(dnscore.A("mail.mfa.gov.kg", 300, evilMail))
	evilSrv := NewServer()
	evilSrv.AddZone(evilZone)
	evilNSZone := dnscore.NewZone("kg-infocom.ru")
	evilNSZone.MustAdd(dnscore.A("ns1.kg-infocom.ru", 300, attackerNS))
	evilSrv.AddZone(evilNSZone)
	transport.Register(attackerNS, evilSrv)

	// The attacker's nameserver name lives under .ru, so it is reached via
	// the root (the kg registry cannot carry out-of-bailiwick glue).
	rootSrv, _ := transport.Server(rootIP)
	rootZone, _ := rootSrv.Zone("")
	rootZone.MustAdd(dnscore.NS("kg-infocom.ru", 86400, "ns1.kg-infocom.ru"))
	rootZone.MustAdd(dnscore.A("ns1.kg-infocom.ru", 86400, attackerNS))

	// Registry-level hijack: replace the delegation in the kg TLD zone,
	// exactly as in the paper's mfa.gov.kg case study.
	if err := kgZone.Replace("mfa.gov.kg", dnscore.TypeNS, dnscore.RRSet{
		dnscore.NS("mfa.gov.kg", 3600, "ns1.kg-infocom.ru"),
	}); err != nil {
		t.Fatal(err)
	}

	addrs, err := resolver.ResolveA("mail.mfa.gov.kg")
	if err != nil {
		t.Fatal(err)
	}
	if addrs[0] != evilMail {
		t.Fatalf("hijacked resolution returned %v, want %v", addrs, evilMail)
	}

	// Roll back the hijack; resolution must return to legitimate infra.
	if err := kgZone.Replace("mfa.gov.kg", dnscore.TypeNS, dnscore.RRSet{
		dnscore.NS("mfa.gov.kg", 3600, "ns1.infocom.kg"),
	}); err != nil {
		t.Fatal(err)
	}
	addrs, err = resolver.ResolveA("mail.mfa.gov.kg")
	if err != nil {
		t.Fatal(err)
	}
	if addrs[0] != legitMail {
		t.Fatalf("post-rollback resolution returned %v, want %v", addrs, legitMail)
	}
}

func TestObserverSeesDelegationsAndAnswers(t *testing.T) {
	_, resolver, _ := buildHierarchy(t)
	var mu sync.Mutex
	var seen []Observation
	resolver.AddObserver(func(o Observation) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, o)
	})
	if _, err := resolver.ResolveA("mail.mfa.gov.kg"); err != nil {
		t.Fatal(err)
	}
	var sawDelegation, sawAnswer bool
	for _, o := range seen {
		if o.Type == dnscore.TypeNS && o.Name == "mfa.gov.kg" {
			sawDelegation = true
		}
		if o.Type == dnscore.TypeA && o.Name == "mail.mfa.gov.kg" {
			sawAnswer = true
		}
	}
	if !sawDelegation || !sawAnswer {
		t.Fatalf("observer missed events: delegation=%v answer=%v (%d observations)", sawDelegation, sawAnswer, len(seen))
	}
}

func TestGluelessDelegation(t *testing.T) {
	transport, resolver, kgZone := buildHierarchy(t)
	// Delegate fiu.gov.kg to a nameserver with no glue in the kg zone; the
	// resolver must resolve ns1.infocom.kg out-of-band.
	kgZone.MustAdd(dnscore.NS("fiu.gov.kg", 3600, "ns2.infocom.kg"))
	fiuZone := dnscore.NewZone("fiu.gov.kg")
	fiuZone.MustAdd(dnscore.A("mail.fiu.gov.kg", 300, netip.MustParseAddr("92.62.65.30")))
	fiuSrv := NewServer()
	fiuSrv.AddZone(fiuZone)
	ns2IP := netip.MustParseAddr("92.62.65.3")
	transport.Register(ns2IP, fiuSrv)
	// ns2.infocom.kg lives in the infocom.kg zone (served with glue via kg).
	infocomSrv, _ := transport.Server(infocomIP)
	infocomZone, _ := infocomSrv.Zone("infocom.kg")
	infocomZone.MustAdd(dnscore.A("ns2.infocom.kg", 3600, ns2IP))

	addrs, err := resolver.ResolveA("mail.fiu.gov.kg")
	if err != nil {
		t.Fatal(err)
	}
	if addrs[0] != netip.MustParseAddr("92.62.65.30") {
		t.Fatalf("glueless resolution returned %v", addrs)
	}
}

func TestServerHandleErrors(t *testing.T) {
	srv := NewServer()
	z := dnscore.NewZone("example.com")
	srv.AddZone(z)

	// Response-bit queries are FORMERR.
	resp := srv.Handle(&dnscore.Message{Response: true, Question: []dnscore.Question{{Name: "example.com", Type: dnscore.TypeA, Class: dnscore.ClassIN}}})
	if resp.RCode != dnscore.RCodeFormErr {
		t.Errorf("response-bit query: %s", resp.RCode)
	}
	// Zero questions are FORMERR.
	resp = srv.Handle(&dnscore.Message{})
	if resp.RCode != dnscore.RCodeFormErr {
		t.Errorf("zero questions: %s", resp.RCode)
	}
	// Non-IN class is NOTIMP.
	resp = srv.Handle(&dnscore.Message{Question: []dnscore.Question{{Name: "example.com", Type: dnscore.TypeA, Class: 3}}})
	if resp.RCode != dnscore.RCodeNotImp {
		t.Errorf("CHAOS query: %s", resp.RCode)
	}
	// Out-of-zone queries are REFUSED.
	resp = srv.Handle(&dnscore.Message{Question: []dnscore.Question{{Name: "other.org", Type: dnscore.TypeA, Class: dnscore.ClassIN}}})
	if resp.RCode != dnscore.RCodeRefused {
		t.Errorf("out-of-zone query: %s", resp.RCode)
	}
}

func TestServerZoneManagement(t *testing.T) {
	srv := NewServer()
	z := dnscore.NewZone("example.com")
	srv.AddZone(z)
	if _, ok := srv.Zone("example.com"); !ok {
		t.Fatal("zone not found after add")
	}
	srv.RemoveZone("example.com")
	if _, ok := srv.Zone("example.com"); ok {
		t.Fatal("zone found after remove")
	}
}

func TestLongestSuffixZoneSelection(t *testing.T) {
	srv := NewServer()
	parent := dnscore.NewZone("gov.kg")
	parent.MustAdd(dnscore.A("x.mfa.gov.kg", 60, netip.MustParseAddr("10.0.0.1")))
	child := dnscore.NewZone("mfa.gov.kg")
	child.MustAdd(dnscore.A("x.mfa.gov.kg", 60, netip.MustParseAddr("10.0.0.2")))
	srv.AddZone(parent)
	srv.AddZone(child)
	resp := srv.Handle(&dnscore.Message{Question: []dnscore.Question{{Name: "x.mfa.gov.kg", Type: dnscore.TypeA, Class: dnscore.ClassIN}}})
	if len(resp.Answer) != 1 || resp.Answer[0].Data != "10.0.0.2" {
		t.Fatalf("longest-suffix selection failed: %v", resp.Answer)
	}
}

func TestMemTransportUnknownServer(t *testing.T) {
	transport := NewMemTransport()
	_, err := transport.Exchange(netip.MustParseAddr("10.9.9.9"), &dnscore.Message{
		Question: []dnscore.Question{{Name: "x.com", Type: dnscore.TypeA, Class: dnscore.ClassIN}},
	})
	if !errors.Is(err, ErrNoServer) {
		t.Fatalf("want ErrNoServer, got %v", err)
	}
	transport.Register(netip.MustParseAddr("10.9.9.9"), NewServer())
	transport.Unregister(netip.MustParseAddr("10.9.9.9"))
	if _, ok := transport.Server(netip.MustParseAddr("10.9.9.9")); ok {
		t.Fatal("server found after unregister")
	}
}

// TestUDPIntegration runs the same hierarchy over real UDP sockets.
func TestUDPIntegration(t *testing.T) {
	memTransport, _, _ := buildHierarchy(t)
	udp := NewUDPTransport()
	for _, sim := range []netip.Addr{rootIP, kgTLDIP, infocomIP} {
		srv, _ := memTransport.Server(sim)
		l, err := ListenUDP("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		udp.Map(sim, l.Addr())
	}
	resolver := NewResolver(udp, []netip.Addr{rootIP})
	addrs, err := resolver.ResolveA("mail.mfa.gov.kg")
	if err != nil {
		t.Fatal(err)
	}
	if addrs[0] != legitMail {
		t.Fatalf("UDP resolution returned %v", addrs)
	}
	// Unknown simulated IP must error.
	if _, err := udp.Exchange(netip.MustParseAddr("203.0.113.1"), &dnscore.Message{
		Question: []dnscore.Question{{Name: "x.com", Type: dnscore.TypeA, Class: dnscore.ClassIN}},
	}); !errors.Is(err, ErrNoServer) {
		t.Fatalf("unknown UDP server: %v", err)
	}
}

func TestResolutionFailsWithoutRoots(t *testing.T) {
	transport := NewMemTransport()
	resolver := NewResolver(transport, nil)
	if _, err := resolver.ResolveA("x.com"); !errors.Is(err, ErrResolutionFailed) {
		t.Fatalf("want resolution failure, got %v", err)
	}
}

func TestCNAMELoopDetection(t *testing.T) {
	transport := NewMemTransport()
	z := dnscore.NewZone("loop.test")
	z.MustAdd(dnscore.CNAME("a.loop.test", 60, "b.loop.test"))
	z.MustAdd(dnscore.CNAME("b.loop.test", 60, "a.loop.test"))
	srv := NewServer()
	srv.AddZone(z)
	rootZone := dnscore.NewZone("")
	rootZone.MustAdd(dnscore.NS("loop.test", 60, "ns.loop.test"))
	rootZone.MustAdd(dnscore.A("ns.loop.test", 60, netip.MustParseAddr("10.0.0.50")))
	rootSrv := NewServer()
	rootSrv.AddZone(rootZone)
	transport.Register(rootIP, rootSrv)
	transport.Register(netip.MustParseAddr("10.0.0.50"), srv)

	resolver := NewResolver(transport, []netip.Addr{rootIP})
	if _, err := resolver.ResolveA("a.loop.test"); err == nil {
		t.Fatal("CNAME loop resolved successfully")
	}
}
