package dnsserver

import (
	"fmt"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"retrodns/internal/dnscore"
)

// bigZone returns a zone whose TXT answer cannot fit a 512-octet UDP
// message, forcing truncation.
func bigZone(t *testing.T) (*Server, dnscore.Name) {
	t.Helper()
	zone := dnscore.NewZone("big.test")
	name := dnscore.Name("records.big.test")
	for i := 0; i < 6; i++ {
		zone.MustAdd(dnscore.TXT(name, 60, fmt.Sprintf("%02d-%s", i, strings.Repeat("x", 180))))
	}
	srv := NewServer()
	srv.AddZone(zone)
	return srv, name
}

func TestUDPTruncationSetsTC(t *testing.T) {
	srv, name := bigZone(t)
	transport := NewMemTransport()
	addr := netip.MustParseAddr("10.0.0.1")
	transport.Register(addr, srv)

	resp, err := transport.Exchange(addr, &dnscore.Message{
		ID:       7,
		Question: []dnscore.Question{{Name: name, Type: dnscore.TypeTXT, Class: dnscore.ClassIN}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatal("oversize answer not truncated over UDP")
	}
}

func TestTCPFramingRoundTrip(t *testing.T) {
	srv, name := bigZone(t)
	l, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))

	// Two queries on one connection (TCP DNS allows pipelined use).
	for i := 0; i < 2; i++ {
		q := &dnscore.Message{
			ID:       uint16(100 + i),
			Question: []dnscore.Question{{Name: name, Type: dnscore.TypeTXT, Class: dnscore.ClassIN}},
		}
		wire, err := q.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := writeTCPMessage(conn, wire); err != nil {
			t.Fatal(err)
		}
		respWire, err := readTCPMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := dnscore.Decode(respWire)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Truncated {
			t.Fatal("TCP response truncated")
		}
		if len(resp.Answer) != 6 {
			t.Fatalf("TCP answer has %d records, want 6", len(resp.Answer))
		}
		if resp.ID != q.ID {
			t.Fatalf("ID mismatch: %d vs %d", resp.ID, q.ID)
		}
	}
}

// TestFallbackTransport drives the full client behavior: UDP first, TC bit
// observed, retry over TCP, full answer returned.
func TestFallbackTransport(t *testing.T) {
	srv, name := bigZone(t)
	sim := netip.MustParseAddr("10.0.0.1")

	udpListener, err := ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer udpListener.Close()
	tcpListener, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpListener.Close()

	udp := NewUDPTransport()
	udp.Map(sim, udpListener.Addr())
	fb := NewFallbackTransport(udp)
	fb.MapTCP(sim, tcpListener.Addr())

	resp, err := fb.Exchange(sim, &dnscore.Message{
		ID:       9,
		Question: []dnscore.Question{{Name: name, Type: dnscore.TypeTXT, Class: dnscore.ClassIN}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated || len(resp.Answer) != 6 {
		t.Fatalf("fallback answer: tc=%v records=%d", resp.Truncated, len(resp.Answer))
	}

	// Small answers stay on UDP (no TCP mapping needed).
	smallZone := dnscore.NewZone("small.test")
	smallZone.MustAdd(dnscore.A("www.small.test", 60, netip.MustParseAddr("10.1.1.1")))
	smallSrv := NewServer()
	smallSrv.AddZone(smallZone)
	smallSim := netip.MustParseAddr("10.0.0.2")
	smallUDP, err := ListenUDP("127.0.0.1:0", smallSrv)
	if err != nil {
		t.Fatal(err)
	}
	defer smallUDP.Close()
	udp.Map(smallSim, smallUDP.Addr())
	if _, err := fb.Exchange(smallSim, &dnscore.Message{
		ID:       10,
		Question: []dnscore.Question{{Name: "www.small.test", Type: dnscore.TypeA, Class: dnscore.ClassIN}},
	}); err != nil {
		t.Fatalf("small answer over UDP-only: %v", err)
	}

	// Truncated response with no TCP mapping errors cleanly.
	fb2 := NewFallbackTransport(udp)
	if _, err := fb2.Exchange(sim, &dnscore.Message{
		ID:       11,
		Question: []dnscore.Question{{Name: name, Type: dnscore.TypeTXT, Class: dnscore.ClassIN}},
	}); err == nil {
		t.Fatal("missing TCP mapping not reported")
	}
}

// TestResolverOverFallback runs iterative resolution where the final
// answer requires the TCP retry.
func TestResolverOverFallback(t *testing.T) {
	bigSrv, name := bigZone(t)
	rootZone := dnscore.NewZone("")
	rootZone.MustAdd(dnscore.NS("big.test", 60, "ns.big.test"))
	rootZone.MustAdd(dnscore.A("ns.big.test", 60, netip.MustParseAddr("10.0.0.1")))
	rootSrv := NewServer()
	rootSrv.AddZone(rootZone)

	udp := NewUDPTransport()
	fb := NewFallbackTransport(udp)
	rootSim := netip.MustParseAddr("198.41.0.4")
	authSim := netip.MustParseAddr("10.0.0.1")
	for _, pair := range []struct {
		sim netip.Addr
		srv *Server
	}{{rootSim, rootSrv}, {authSim, bigSrv}} {
		ul, err := ListenUDP("127.0.0.1:0", pair.srv)
		if err != nil {
			t.Fatal(err)
		}
		defer ul.Close()
		udp.Map(pair.sim, ul.Addr())
		tl, err := ListenTCP("127.0.0.1:0", pair.srv)
		if err != nil {
			t.Fatal(err)
		}
		defer tl.Close()
		fb.MapTCP(pair.sim, tl.Addr())
	}

	resolver := NewResolver(fb, []netip.Addr{rootSim})
	rrs, err := resolver.Resolve(name, dnscore.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 6 {
		t.Fatalf("resolved %d TXT records, want 6", len(rrs))
	}
}

func TestTCPMessageFraming(t *testing.T) {
	// Zero-length frames are rejected.
	if _, err := readTCPMessage(strings.NewReader("\x00\x00")); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Oversize writes are rejected.
	var sink strings.Builder
	if err := writeTCPMessage(&sink, make([]byte, maxTCPMessage+1)); err == nil {
		t.Error("oversize frame accepted")
	}
	// Short reads surface as errors.
	if _, err := readTCPMessage(strings.NewReader("\x00\x10abc")); err == nil {
		t.Error("short frame accepted")
	}
}

func TestEncodeTCPUnbounded(t *testing.T) {
	m := &dnscore.Message{ID: 1}
	for i := 0; i < 10; i++ {
		m.Answer = append(m.Answer, dnscore.TXT("t.example.com", 60, strings.Repeat("y", 200)))
	}
	if _, err := m.Encode(); err == nil {
		t.Fatal("UDP encode accepted oversize message")
	}
	wire, err := m.EncodeTCP()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dnscore.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answer) != 10 {
		t.Fatalf("TCP round trip lost records: %d", len(got.Answer))
	}
}
