package dnsserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"retrodns/internal/dnscore"
)

// TCP transport for DNS, RFC 1035 §4.2.2: messages are length-prefixed with
// a two-octet big-endian size, and responses that arrive truncated over UDP
// (TC bit set) are retried over TCP, where the 512-octet ceiling does not
// apply.

// maxTCPMessage bounds a TCP-framed DNS message.
const maxTCPMessage = 64 << 10

// TCPListener serves a Server over a TCP socket with RFC 1035 framing.
type TCPListener struct {
	srv      *Server
	listener net.Listener
	done     chan struct{}
	wg       sync.WaitGroup
}

// ListenTCP starts serving srv on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string, srv *Server) (*TCPListener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: listen tcp %q: %w", addr, err)
	}
	t := &TCPListener{srv: srv, listener: l, done: make(chan struct{})}
	t.wg.Add(1)
	go t.serve()
	return t, nil
}

// Addr returns the bound address.
func (t *TCPListener) Addr() net.Addr { return t.listener.Addr() }

// Close stops the listener and waits for the accept loop.
func (t *TCPListener) Close() error {
	close(t.done)
	err := t.listener.Close()
	t.wg.Wait()
	return err
}

func (t *TCPListener) serve() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer conn.Close()
			t.handleConn(conn)
		}()
	}
}

// handleConn serves queries on one connection until EOF or error. TCP DNS
// allows multiple queries per connection.
func (t *TCPListener) handleConn(conn net.Conn) {
	for {
		_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
		query, err := readTCPMessage(conn)
		if err != nil {
			return
		}
		q, err := dnscore.Decode(query)
		if err != nil {
			return
		}
		resp := t.srv.Handle(q)
		wire, err := encodeUnbounded(resp)
		if err != nil {
			return
		}
		if err := writeTCPMessage(conn, wire); err != nil {
			return
		}
	}
}

// encodeUnbounded encodes a response without the UDP size ceiling: TCP
// responses never need truncation (within the 64 KiB frame).
func encodeUnbounded(m *dnscore.Message) ([]byte, error) {
	wire, err := m.Encode()
	if err == nil {
		return wire, nil
	}
	if !errors.Is(err, dnscore.ErrMessageTooLong) {
		return nil, err
	}
	return m.EncodeTCP()
}

// readTCPMessage reads one length-prefixed message.
func readTCPMessage(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	if n == 0 {
		return nil, errors.New("dnsserver: zero-length TCP message")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeTCPMessage writes one length-prefixed message.
func writeTCPMessage(w io.Writer, msg []byte) error {
	if len(msg) > maxTCPMessage {
		return fmt.Errorf("dnsserver: message of %d octets exceeds TCP frame", len(msg))
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// FallbackTransport exchanges over UDP and retries truncated responses
// over TCP, the way stub and recursive resolvers do.
type FallbackTransport struct {
	udp *UDPTransport

	mu  sync.RWMutex
	tcp map[netip.Addr]net.Addr
	// Timeout bounds each TCP exchange.
	Timeout time.Duration
}

// NewFallbackTransport wraps a UDP transport with TCP retry.
func NewFallbackTransport(udp *UDPTransport) *FallbackTransport {
	return &FallbackTransport{udp: udp, tcp: make(map[netip.Addr]net.Addr), Timeout: 2 * time.Second}
}

// MapTCP associates a simulated nameserver IP with a live TCP address.
func (t *FallbackTransport) MapTCP(sim netip.Addr, real net.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tcp[sim] = real
}

// Exchange implements Transport.
func (t *FallbackTransport) Exchange(server netip.Addr, query *dnscore.Message) (*dnscore.Message, error) {
	resp, err := t.udp.Exchange(server, query)
	if err != nil {
		return nil, err
	}
	if !resp.Truncated {
		return resp, nil
	}
	return t.exchangeTCP(server, query)
}

func (t *FallbackTransport) exchangeTCP(server netip.Addr, query *dnscore.Message) (*dnscore.Message, error) {
	t.mu.RLock()
	addr, ok := t.tcp[server]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: no TCP mapping for %s", ErrNoServer, server)
	}
	conn, err := net.DialTimeout("tcp", addr.String(), t.Timeout)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: dial tcp %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(t.Timeout))
	wire, err := query.Encode()
	if err != nil {
		return nil, err
	}
	if err := writeTCPMessage(conn, wire); err != nil {
		return nil, err
	}
	respWire, err := readTCPMessage(conn)
	if err != nil {
		return nil, err
	}
	resp, err := dnscore.Decode(respWire)
	if err != nil {
		return nil, err
	}
	if resp.ID != query.ID {
		return nil, errors.New("dnsserver: TCP response ID mismatch")
	}
	return resp, nil
}
