// Package dnsserver provides the resolution plane of the simulation: an
// authoritative nameserver that serves dnscore zones, pluggable transports
// (in-memory for large simulations, UDP for integration tests and
// examples), and an iterative resolver with an observation hook that feeds
// the passive-DNS sensors.
package dnsserver

import (
	"fmt"
	"sync"

	"retrodns/internal/dnscore"
)

// Server answers DNS queries authoritatively for a set of zones. A Server
// models one nameserver host; in the simulation each authoritative
// nameserver IP maps to one Server.
type Server struct {
	mu    sync.RWMutex
	zones map[dnscore.Name]*dnscore.Zone
}

// NewServer creates a server with no zones.
func NewServer() *Server {
	return &Server{zones: make(map[dnscore.Name]*dnscore.Zone)}
}

// AddZone makes the server authoritative for z. Adding a second zone with
// the same apex replaces the first.
func (s *Server) AddZone(z *dnscore.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Apex()] = z
}

// RemoveZone drops authority for the zone rooted at apex.
func (s *Server) RemoveZone(apex dnscore.Name) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, apex)
}

// Zone returns the zone with the given apex, if the server is authoritative
// for it.
func (s *Server) Zone(apex dnscore.Name) (*dnscore.Zone, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[apex]
	return z, ok
}

// findZone returns the zone whose apex is the longest suffix of name.
func (s *Server) findZone(name dnscore.Name) *dnscore.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best *dnscore.Zone
	bestLabels := -1
	for apex, z := range s.zones {
		if name.IsSubdomainOf(apex) && apex.NumLabels() > bestLabels {
			best, bestLabels = z, apex.NumLabels()
		}
	}
	return best
}

// Handle answers a single query message. It never returns nil: malformed or
// unanswerable queries produce an error response, mirroring a real
// authoritative daemon.
func (s *Server) Handle(q *dnscore.Message) *dnscore.Message {
	resp := &dnscore.Message{
		ID:               q.ID,
		Response:         true,
		Opcode:           q.Opcode,
		RecursionDesired: q.RecursionDesired,
		Question:         q.Question,
	}
	if q.Response || len(q.Question) != 1 || q.Opcode != 0 {
		resp.RCode = dnscore.RCodeFormErr
		return resp
	}
	question := q.Question[0]
	if question.Class != dnscore.ClassIN {
		resp.RCode = dnscore.RCodeNotImp
		return resp
	}
	zone := s.findZone(question.Name)
	if zone == nil {
		resp.RCode = dnscore.RCodeRefused
		return resp
	}
	// DS queries are answered by the parent side of a delegation cut, as
	// in real DNSSEC; ordinary queries at a cut are referrals.
	if question.Type == dnscore.TypeDS {
		if ds := zone.DirectSet(question.Name, dnscore.TypeDS); len(ds) > 0 {
			resp.Authoritative = true
			resp.Answer = ds
			resp.Answer = append(resp.Answer, signaturesCovering(zone, question.Name, dnscore.TypeDS)...)
			return resp
		}
	}
	answer, delegation, exists := zone.Lookup(question.Name, question.Type)
	switch {
	case len(answer) > 0:
		resp.Authoritative = true
		resp.Answer = answer
		resp.Answer = append(resp.Answer, signaturesCovering(zone, question.Name, question.Type)...)
		// Chase in-zone CNAME chains for the convenience of stub clients.
		if answer[0].Type == dnscore.TypeCNAME && question.Type != dnscore.TypeCNAME {
			seen := map[dnscore.Name]bool{question.Name: true}
			target := answer[0].Target()
			for target != "" && !seen[target] {
				seen[target] = true
				more, _, _ := zone.Lookup(target, question.Type)
				if len(more) == 0 {
					break
				}
				resp.Answer = append(resp.Answer, more...)
				if more[0].Type != dnscore.TypeCNAME {
					break
				}
				target = more[0].Target()
			}
		}
	case len(delegation) > 0:
		// Referral: NS set in authority, any in-zone glue in additional.
		// A signing parent also publishes the DS records (and their
		// signatures) for the cut, so validating resolvers can extend
		// the chain of trust.
		resp.Authority = delegation
		cut := delegation[0].Name
		if ds := zone.DirectSet(cut, dnscore.TypeDS); len(ds) > 0 {
			resp.Authority = append(resp.Authority, ds...)
			resp.Authority = append(resp.Authority, signaturesCovering(zone, cut, dnscore.TypeDS)...)
		}
		for _, ns := range delegation {
			if glue := zone.Glue(ns.Target()); len(glue) > 0 {
				resp.Additional = append(resp.Additional, glue...)
			}
		}
	case exists:
		resp.Authoritative = true // NODATA
	default:
		resp.Authoritative = true
		resp.RCode = dnscore.RCodeNXDomain
	}
	return resp
}

// signaturesCovering returns the RRSIG records at name that cover typ.
func signaturesCovering(zone *dnscore.Zone, name dnscore.Name, typ dnscore.Type) dnscore.RRSet {
	var out dnscore.RRSet
	for _, sig := range zone.DirectSet(name, dnscore.TypeRRSIG) {
		if covered, _, ok := dnscore.RRSIGCovers(sig); ok && covered == typ {
			out = append(out, sig)
		}
	}
	return out
}

// HandleWire answers a wire-format query, used by the UDP front end.
func (s *Server) HandleWire(b []byte) ([]byte, error) {
	q, err := dnscore.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: decode query: %w", err)
	}
	resp := s.Handle(q)
	out, err := resp.Encode()
	if err == nil {
		return out, nil
	}
	// Truncate: shed sections until the response fits, setting TC.
	resp.Truncated = true
	resp.Additional = nil
	if out, err = resp.Encode(); err == nil {
		return out, nil
	}
	resp.Authority = nil
	if out, err = resp.Encode(); err == nil {
		return out, nil
	}
	resp.Answer = nil
	return resp.Encode()
}
