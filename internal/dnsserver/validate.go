package dnsserver

import (
	"errors"
	"fmt"
	"net/netip"

	"retrodns/internal/dnscore"
)

// DNSSEC validation: ResolveSecure walks the delegation chain like Resolve
// but additionally maintains the chain of trust — trust anchor → root
// DNSKEY → DS → child DNSKEY → RRSIG — and reports whether the final
// answer was Secure, Insecure (a delegation legitimately published no DS),
// or Bogus (a published DS was not honored by a valid signature).
//
// This is the mechanism the paper's §2.2 shows failing under
// infrastructure hijack: the attacker who rewrites the delegation also
// strips the DS, downgrading the domain from Secure to Insecure rather
// than to Bogus — a transition a monitor can observe (§7.1).

// ErrNoTrustAnchor is returned by ResolveSecure when no anchor is set.
var ErrNoTrustAnchor = errors.New("dnsserver: no trust anchor configured")

// SetTrustAnchor installs the root zone's DNSKEY as the validation anchor.
func (r *Resolver) SetTrustAnchor(anchor dnscore.RR) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.anchor = &anchor
}

// trustAnchor returns the configured anchor.
func (r *Resolver) trustAnchor() *dnscore.RR {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.anchor
}

// chainState tracks validation as the walk descends.
type chainState struct {
	// secure is true while an unbroken chain of DS records exists.
	secure bool
	// zone is the apex of the zone the current servers are authoritative
	// for ("" at the root).
	zone dnscore.Name
	// ds holds the DS set published by the parent for `zone` (nil at the
	// root, where the trust anchor takes its place).
	ds dnscore.RRSet
}

// ResolveSecure resolves (name, typ) with DNSSEC validation and returns
// the answer records (signatures stripped), the security status, and any
// resolution error. A Bogus chain returns an error: validating resolvers
// refuse bogus data.
func (r *Resolver) ResolveSecure(name dnscore.Name, typ dnscore.Type) (dnscore.RRSet, dnscore.SecurityStatus, error) {
	if r.trustAnchor() == nil {
		return nil, dnscore.StatusInsecure, ErrNoTrustAnchor
	}
	return r.resolveSecure(name, typ, 0)
}

func (r *Resolver) resolveSecure(name dnscore.Name, typ dnscore.Type, cnameDepth int) (dnscore.RRSet, dnscore.SecurityStatus, error) {
	if cnameDepth > maxCNAMEChain {
		return nil, dnscore.StatusInsecure, fmt.Errorf("%w: %s", ErrCNAMELoop, name)
	}
	servers := append([]netip.Addr(nil), r.roots...)
	state := chainState{secure: true, zone: ""}

	for hop := 0; hop < maxReferrals; hop++ {
		if len(servers) == 0 {
			break
		}
		resp, server, err := r.queryAny(servers, name, typ)
		if err != nil {
			return nil, dnscore.StatusInsecure, err
		}
		switch {
		case resp.RCode == dnscore.RCodeNXDomain:
			return nil, statusOf(state), fmt.Errorf("%w: %s", ErrNXDomain, name)
		case resp.RCode != dnscore.RCodeNoError:
			return nil, dnscore.StatusInsecure, errors.Join(ErrResolutionFailed,
				fmt.Errorf("dnsserver: %s from %s for %s", resp.RCode, server, name))
		case len(answersOnly(resp.Answer)) > 0:
			return r.validateAnswer(name, typ, resp, server, state, cnameDepth)
		case len(resp.Authority) > 0:
			next, err := r.delegationTargets(resp, 0)
			if err != nil {
				return nil, statusOf(state), err
			}
			state, err = r.descend(resp, server, state)
			if err != nil {
				return nil, dnscore.StatusBogus, err
			}
			servers = next
		default:
			return nil, statusOf(state), fmt.Errorf("%w: %s %s", ErrNoData, name, typ)
		}
	}
	return nil, dnscore.StatusInsecure, errors.Join(ErrResolutionFailed,
		fmt.Errorf("referral limit reached for %s", name))
}

func statusOf(state chainState) dnscore.SecurityStatus {
	if state.secure {
		return dnscore.StatusSecure
	}
	return dnscore.StatusInsecure
}

// answersOnly strips RRSIG records from an answer section.
func answersOnly(rrs dnscore.RRSet) dnscore.RRSet {
	var out dnscore.RRSet
	for _, rr := range rrs {
		if rr.Type != dnscore.TypeRRSIG {
			out = append(out, rr)
		}
	}
	return out
}

// zoneKeyFor fetches and authenticates the DNSKEY of the current zone from
// the given server: at the root it must equal the trust anchor; below, it
// must match the DS set the parent published.
func (r *Resolver) zoneKeyFor(server netip.Addr, state chainState) (dnscore.RR, error) {
	q := &dnscore.Message{
		ID:       r.queryID(),
		Question: []dnscore.Question{{Name: state.zone, Type: dnscore.TypeDNSKEY, Class: dnscore.ClassIN}},
	}
	resp, err := r.transport.Exchange(server, q)
	if err != nil {
		return dnscore.RR{}, fmt.Errorf("fetching DNSKEY %s: %w", state.zone, err)
	}
	var dnskey *dnscore.RR
	for i, rr := range resp.Answer {
		if rr.Type == dnscore.TypeDNSKEY && rr.Name == state.zone {
			dnskey = &resp.Answer[i]
			break
		}
	}
	if dnskey == nil {
		return dnscore.RR{}, fmt.Errorf("zone %s publishes no DNSKEY", state.zone)
	}
	if state.zone == "" || state.ds == nil {
		anchor := r.trustAnchor()
		if anchor == nil || anchor.Data != dnskey.Data {
			return dnscore.RR{}, fmt.Errorf("root DNSKEY does not match trust anchor")
		}
		return *dnskey, nil
	}
	for _, ds := range state.ds {
		if dnscore.DSMatchesKey(ds, *dnskey) {
			return *dnskey, nil
		}
	}
	return dnscore.RR{}, fmt.Errorf("DNSKEY of %s does not match the DS its parent published", state.zone)
}

// descend processes a referral: if the current zone is secure, the DS set
// for the cut (validated under the parent key) extends the chain; a
// missing DS downgrades to insecure; a DS whose signature fails is bogus.
func (r *Resolver) descend(resp *dnscore.Message, server netip.Addr, state chainState) (chainState, error) {
	var cut dnscore.Name
	var ds, dsSigs dnscore.RRSet
	for _, rr := range resp.Authority {
		switch rr.Type {
		case dnscore.TypeNS:
			cut = rr.Name
		case dnscore.TypeDS:
			ds = append(ds, rr)
		case dnscore.TypeRRSIG:
			if covered, _, ok := dnscore.RRSIGCovers(rr); ok && covered == dnscore.TypeDS {
				dsSigs = append(dsSigs, rr)
			}
		}
	}
	next := chainState{zone: cut, secure: false}
	if !state.secure {
		return next, nil
	}
	if len(ds) == 0 {
		// Legitimate unsigned delegation — or an attacker-stripped DS.
		// Either way the subtree is insecure, not bogus.
		return next, nil
	}
	parentKey, err := r.zoneKeyFor(server, state)
	if err != nil {
		return next, err
	}
	sigOK := false
	for _, sig := range dsSigs {
		if dnscore.VerifyRRSet(cut, dnscore.TypeDS, ds, sig, parentKey) {
			sigOK = true
			break
		}
	}
	if !sigOK {
		return next, fmt.Errorf("DS set for %s fails validation under %s's key", cut, parentNameOf(state.zone))
	}
	next.secure = true
	next.ds = ds
	return next, nil
}

func parentNameOf(zone dnscore.Name) string {
	if zone == "" {
		return "the root"
	}
	return zone.String()
}

// validateAnswer checks the final answer's RRSIG under the authenticated
// zone key, then chases CNAMEs with fresh validation.
func (r *Resolver) validateAnswer(name dnscore.Name, typ dnscore.Type, resp *dnscore.Message, server netip.Addr, state chainState, cnameDepth int) (dnscore.RRSet, dnscore.SecurityStatus, error) {
	answers := answersOnly(resp.Answer)
	status := dnscore.StatusInsecure
	if state.secure {
		dnskey, err := r.zoneKeyFor(server, state)
		if err != nil {
			return nil, dnscore.StatusBogus, fmt.Errorf("dnsserver: bogus chain: %w", err)
		}
		// The first answered set is what the signature must cover.
		first := answers[0]
		var set dnscore.RRSet
		for _, rr := range answers {
			if rr.Name == first.Name && rr.Type == first.Type {
				set = append(set, rr)
			}
		}
		verified := false
		for _, rr := range resp.Answer {
			if rr.Type != dnscore.TypeRRSIG {
				continue
			}
			if dnscore.VerifyRRSet(first.Name, first.Type, set, rr, dnskey) {
				verified = true
				break
			}
		}
		if !verified {
			return nil, dnscore.StatusBogus, fmt.Errorf("dnsserver: bogus answer for %s %s: signed zone returned no valid RRSIG", name, typ)
		}
		status = dnscore.StatusSecure
	}
	for _, rr := range answers {
		r.observe(Observation{Name: rr.Name, Type: rr.Type, Data: rr.Data, Server: server})
	}
	last := answers[len(answers)-1]
	if last.Type == dnscore.TypeCNAME && typ != dnscore.TypeCNAME {
		tail, tailStatus, err := r.resolveSecure(last.Target(), typ, cnameDepth+1)
		if err != nil {
			return nil, tailStatus, err
		}
		return append(answers, tail...), worstStatus(status, tailStatus), nil
	}
	return answers, status, nil
}

// worstStatus combines chain outcomes: Bogus dominates, then Insecure.
func worstStatus(a, b dnscore.SecurityStatus) dnscore.SecurityStatus {
	if a == dnscore.StatusBogus || b == dnscore.StatusBogus {
		return dnscore.StatusBogus
	}
	if a == dnscore.StatusInsecure || b == dnscore.StatusInsecure {
		return dnscore.StatusInsecure
	}
	return dnscore.StatusSecure
}
