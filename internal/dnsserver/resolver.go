package dnsserver

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"

	"retrodns/internal/dnscore"
)

// Resolution limits mirroring conventional recursive resolver safeguards.
const (
	maxReferrals  = 24 // delegation hops per query
	maxCNAMEChain = 8  // alias hops per query
	maxNSDepth    = 4  // out-of-band glueless nameserver resolutions
)

// Resolution errors.
var (
	ErrResolutionFailed = errors.New("dnsserver: resolution failed")
	ErrNXDomain         = errors.New("dnsserver: NXDOMAIN")
	ErrNoData           = errors.New("dnsserver: no data")
	ErrCNAMELoop        = errors.New("dnsserver: CNAME loop")
)

// Observation describes one fact learned during resolution. The passive-DNS
// sensor subscribes to these; its view of a resolution is exactly what a
// sensor between a recursive resolver and the authoritative hierarchy sees.
type Observation struct {
	// Name is the owner name of the observed record.
	Name dnscore.Name
	// Type is the record type (NS for delegations, A/CNAME/TXT for answers).
	Type dnscore.Type
	// Data is the record data in presentation form.
	Data string
	// Server is the authoritative nameserver IP that supplied the record.
	Server netip.Addr
}

// Observer receives resolution observations.
type Observer func(Observation)

// Resolver performs iterative resolution starting from root hints, the way
// a recursive resolver does: query a root server, follow referrals downward
// using in-message glue (or resolving nameserver names out-of-band), and
// chase CNAME chains.
type Resolver struct {
	transport Transport
	roots     []netip.Addr

	mu        sync.RWMutex
	observers []Observer
	anchor    *dnscore.RR // DNSSEC trust anchor (root DNSKEY)

	// rng provides query IDs; deterministic seeding keeps simulations
	// reproducible.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewResolver creates a resolver using the transport and root server hints.
func NewResolver(transport Transport, roots []netip.Addr) *Resolver {
	return &Resolver{
		transport: transport,
		roots:     append([]netip.Addr(nil), roots...),
		rng:       rand.New(rand.NewSource(1)),
	}
}

// AddObserver registers an observer for every subsequent resolution.
func (r *Resolver) AddObserver(obs Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observers = append(r.observers, obs)
}

func (r *Resolver) observe(o Observation) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, obs := range r.observers {
		obs(o)
	}
}

func (r *Resolver) queryID() uint16 {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return uint16(r.rng.Intn(1 << 16))
}

// Resolve iteratively resolves (name, typ) and returns the final answer
// records. NXDOMAIN and NODATA are reported as wrapped errors so callers can
// distinguish outcome classes.
func (r *Resolver) Resolve(name dnscore.Name, typ dnscore.Type) (dnscore.RRSet, error) {
	return r.resolve(name, typ, 0, 0)
}

// ResolveA resolves a name to its IPv4 addresses, following CNAMEs.
func (r *Resolver) ResolveA(name dnscore.Name) ([]netip.Addr, error) {
	rrs, err := r.Resolve(name, dnscore.TypeA)
	if err != nil {
		return nil, err
	}
	var addrs []netip.Addr
	for _, rr := range rrs {
		if a := rr.Addr(); a.IsValid() {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: %s A", ErrNoData, name)
	}
	return addrs, nil
}

// ResolveTXT resolves a name's TXT strings; used by CA DNS-01 validation.
func (r *Resolver) ResolveTXT(name dnscore.Name) ([]string, error) {
	rrs, err := r.Resolve(name, dnscore.TypeTXT)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, rr := range rrs {
		if rr.Type == dnscore.TypeTXT {
			out = append(out, rr.Data)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %s TXT", ErrNoData, name)
	}
	return out, nil
}

func (r *Resolver) resolve(name dnscore.Name, typ dnscore.Type, cnameDepth, nsDepth int) (dnscore.RRSet, error) {
	if cnameDepth > maxCNAMEChain {
		return nil, fmt.Errorf("%w: %s", ErrCNAMELoop, name)
	}
	if nsDepth > maxNSDepth {
		return nil, errors.Join(ErrResolutionFailed, fmt.Errorf("glueless nameserver chain too deep at %s", name))
	}
	servers := append([]netip.Addr(nil), r.roots...)
	var lastErr error
	for hop := 0; hop < maxReferrals; hop++ {
		if len(servers) == 0 {
			break
		}
		resp, server, err := r.queryAny(servers, name, typ)
		if err != nil {
			lastErr = err
			break
		}
		switch {
		case resp.RCode == dnscore.RCodeNXDomain:
			return nil, fmt.Errorf("%w: %s", ErrNXDomain, name)
		case resp.RCode != dnscore.RCodeNoError:
			lastErr = fmt.Errorf("dnsserver: %s from %s for %s", resp.RCode, server, name)
			return nil, errors.Join(ErrResolutionFailed, lastErr)
		case len(resp.Answer) > 0:
			for _, rr := range resp.Answer {
				r.observe(Observation{Name: rr.Name, Type: rr.Type, Data: rr.Data, Server: server})
			}
			// If the answer is a CNAME chain without the target type at
			// the end, restart resolution at the final alias target.
			last := resp.Answer[len(resp.Answer)-1]
			if last.Type == dnscore.TypeCNAME && typ != dnscore.TypeCNAME {
				target := last.Target()
				tail, err := r.resolve(target, typ, cnameDepth+1, nsDepth)
				if err != nil {
					return nil, err
				}
				return append(resp.Answer, tail...), nil
			}
			return resp.Answer, nil
		case len(resp.Authority) > 0:
			// Referral: follow the delegation.
			for _, rr := range resp.Authority {
				r.observe(Observation{Name: rr.Name, Type: rr.Type, Data: rr.Data, Server: server})
			}
			next, err := r.delegationTargets(resp, nsDepth)
			if err != nil {
				return nil, err
			}
			servers = next
		default:
			// Authoritative empty answer: NODATA.
			return nil, fmt.Errorf("%w: %s %s", ErrNoData, name, typ)
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("referral limit reached for %s", name)
	}
	return nil, errors.Join(ErrResolutionFailed, lastErr)
}

// queryAny tries each candidate server until one responds.
func (r *Resolver) queryAny(servers []netip.Addr, name dnscore.Name, typ dnscore.Type) (*dnscore.Message, netip.Addr, error) {
	var lastErr error
	for _, server := range servers {
		q := &dnscore.Message{
			ID:       r.queryID(),
			Question: []dnscore.Question{{Name: name, Type: typ, Class: dnscore.ClassIN}},
		}
		resp, err := r.transport.Exchange(server, q)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.RCode == dnscore.RCodeRefused || resp.RCode == dnscore.RCodeServFail {
			lastErr = fmt.Errorf("dnsserver: %s from %s", resp.RCode, server)
			continue
		}
		return resp, server, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no servers to query")
	}
	return nil, netip.Addr{}, errors.Join(ErrResolutionFailed, lastErr)
}

// delegationTargets extracts nameserver addresses from a referral, using
// glue when present and resolving nameserver names otherwise.
func (r *Resolver) delegationTargets(resp *dnscore.Message, nsDepth int) ([]netip.Addr, error) {
	glue := make(map[dnscore.Name][]netip.Addr)
	for _, rr := range resp.Additional {
		if a := rr.Addr(); a.IsValid() {
			glue[rr.Name] = append(glue[rr.Name], a)
		}
	}
	var addrs []netip.Addr
	var glueless []dnscore.Name
	for _, rr := range resp.Authority {
		if rr.Type != dnscore.TypeNS {
			continue
		}
		target := rr.Target()
		if g, ok := glue[target]; ok {
			addrs = append(addrs, g...)
		} else {
			glueless = append(glueless, target)
		}
	}
	// Resolve glueless nameservers out-of-band (bounded by the outer
	// referral budget; depth here is fine because each resolves from the
	// roots independently).
	for _, target := range glueless {
		if len(addrs) > 0 {
			break // glue already gave us somewhere to go
		}
		got, err := r.resolve(target, dnscore.TypeA, 0, nsDepth+1)
		if err != nil {
			continue
		}
		for _, rr := range got {
			if a := rr.Addr(); a.IsValid() {
				addrs = append(addrs, a)
			}
		}
	}
	if len(addrs) == 0 {
		return nil, errors.Join(ErrResolutionFailed, errors.New("delegation with no reachable nameservers"))
	}
	return addrs, nil
}
