package dnsserver

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"retrodns/internal/dnscore"
)

// Transport delivers a query to the nameserver at a (simulated) IP address
// and returns its response. The simulation uses MemTransport for scale; the
// examples and integration tests use UDPTransport over real sockets.
type Transport interface {
	Exchange(server netip.Addr, query *dnscore.Message) (*dnscore.Message, error)
}

// ErrNoServer is returned when no nameserver is reachable at an address.
var ErrNoServer = errors.New("dnsserver: no server at address")

// MemTransport routes queries directly to in-process Servers keyed by their
// simulated IP address. Exchanges are synchronous function calls, so a
// simulation can resolve millions of names without sockets.
type MemTransport struct {
	mu      sync.RWMutex
	servers map[netip.Addr]*Server
}

// NewMemTransport creates an empty in-memory network.
func NewMemTransport() *MemTransport {
	return &MemTransport{servers: make(map[netip.Addr]*Server)}
}

// Register places srv at addr, replacing any previous occupant.
func (t *MemTransport) Register(addr netip.Addr, srv *Server) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.servers[addr] = srv
}

// Unregister removes whatever server is at addr.
func (t *MemTransport) Unregister(addr netip.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.servers, addr)
}

// Server returns the server registered at addr.
func (t *MemTransport) Server(addr netip.Addr) (*Server, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, ok := t.servers[addr]
	return s, ok
}

// Exchange implements Transport.
func (t *MemTransport) Exchange(server netip.Addr, query *dnscore.Message) (*dnscore.Message, error) {
	srv, ok := t.Server(server)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoServer, server)
	}
	// Round-trip through the wire format so that the in-memory path
	// exercises exactly the same encoding as the UDP path.
	wire, err := query.Encode()
	if err != nil {
		return nil, err
	}
	respWire, err := srv.HandleWire(wire)
	if err != nil {
		return nil, err
	}
	return dnscore.Decode(respWire)
}

// UDPListener serves a Server on a real UDP socket. It maps one simulated
// nameserver onto localhost for integration tests and runnable examples.
type UDPListener struct {
	srv  *Server
	conn *net.UDPConn
	done chan struct{}
	wg   sync.WaitGroup
}

// ListenUDP starts serving srv on addr (e.g. "127.0.0.1:0") and returns the
// listener. Close must be called to release the socket.
func ListenUDP(addr string, srv *Server) (*UDPListener, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: listen %q: %w", addr, err)
	}
	l := &UDPListener{srv: srv, conn: conn, done: make(chan struct{})}
	l.wg.Add(1)
	go l.serve()
	return l, nil
}

// Addr returns the bound socket address.
func (l *UDPListener) Addr() *net.UDPAddr { return l.conn.LocalAddr().(*net.UDPAddr) }

// Close stops the listener and waits for the serve loop to exit.
func (l *UDPListener) Close() error {
	close(l.done)
	err := l.conn.Close()
	l.wg.Wait()
	return err
}

func (l *UDPListener) serve() {
	defer l.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, peer, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-l.done:
				return
			default:
				continue // transient read error; keep serving
			}
		}
		resp, err := l.srv.HandleWire(buf[:n])
		if err != nil {
			continue // drop malformed queries, as real servers do
		}
		_, _ = l.conn.WriteToUDP(resp, peer)
	}
}

// UDPTransport sends queries over real UDP sockets. Simulated nameserver
// IPs are mapped to localhost socket addresses via Map.
type UDPTransport struct {
	mu      sync.RWMutex
	mapping map[netip.Addr]*net.UDPAddr
	// Timeout bounds each exchange; defaults to one second.
	Timeout time.Duration
}

// NewUDPTransport creates an empty UDP transport.
func NewUDPTransport() *UDPTransport {
	return &UDPTransport{mapping: make(map[netip.Addr]*net.UDPAddr), Timeout: time.Second}
}

// Map associates a simulated nameserver IP with a live socket address.
func (t *UDPTransport) Map(sim netip.Addr, real *net.UDPAddr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mapping[sim] = real
}

// Exchange implements Transport.
func (t *UDPTransport) Exchange(server netip.Addr, query *dnscore.Message) (*dnscore.Message, error) {
	t.mu.RLock()
	real, ok := t.mapping[server]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoServer, server)
	}
	wire, err := query.Encode()
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, real)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: dial %s: %w", real, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(t.Timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("dnsserver: send: %w", err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: receive: %w", err)
	}
	resp, err := dnscore.Decode(buf[:n])
	if err != nil {
		return nil, err
	}
	if resp.ID != query.ID {
		return nil, errors.New("dnsserver: response ID mismatch")
	}
	return resp, nil
}
