package dnsserver

import (
	"net/netip"
	"strings"
	"testing"

	"retrodns/internal/dnscore"
)

// signedHierarchy builds a fully signed chain:
//
//	root (signed, trust anchor) → kg (signed, DS in root)
//	  → mfa.gov.kg (signed, DS in kg)   [the victim]
//	  → unsigned.kg (no DS)             [legitimately insecure]
//
// It returns the resolver (with anchor installed) plus the zones and keys
// the tests manipulate.
type signedWorld struct {
	transport *MemTransport
	resolver  *Resolver
	rootZone  *dnscore.Zone
	rootKey   *dnscore.ZoneKey
	kgZone    *dnscore.Zone
	kgKey     *dnscore.ZoneKey
	mfaZone   *dnscore.Zone
	mfaKey    *dnscore.ZoneKey
	evilSrv   *Server
}

func newSignedWorld(t *testing.T) *signedWorld {
	t.Helper()
	w := &signedWorld{transport: NewMemTransport()}

	w.rootKey = dnscore.NewZoneKey("", 1)
	w.kgKey = dnscore.NewZoneKey("kg", 2)
	w.mfaKey = dnscore.NewZoneKey("mfa.gov.kg", 3)

	w.rootZone = dnscore.NewZone("")
	w.rootZone.MustAdd(dnscore.NS("kg", 86400, "ns.tld.kg"))
	w.rootZone.MustAdd(dnscore.A("ns.tld.kg", 86400, kgTLDIP))
	w.rootZone.MustAdd(dnscore.NS("kg-infocom.ru", 86400, "ns1.kg-infocom.ru"))
	w.rootZone.MustAdd(dnscore.A("ns1.kg-infocom.ru", 86400, attackerNS))
	w.rootZone.MustAdd(w.kgKey.DS())
	rootSrv := NewServer()
	rootSrv.AddZone(w.rootZone)
	w.transport.Register(rootIP, rootSrv)

	w.kgZone = dnscore.NewZone("kg")
	w.kgZone.MustAdd(dnscore.NS("mfa.gov.kg", 3600, "ns1.infocom.kg"))
	w.kgZone.MustAdd(dnscore.A("ns1.infocom.kg", 3600, infocomIP))
	w.kgZone.MustAdd(dnscore.NS("unsigned.kg", 3600, "ns1.infocom.kg"))
	w.kgZone.MustAdd(w.mfaKey.DS())
	kgSrv := NewServer()
	kgSrv.AddZone(w.kgZone)
	w.transport.Register(kgTLDIP, kgSrv)

	w.mfaZone = dnscore.NewZone("mfa.gov.kg")
	w.mfaZone.MustAdd(dnscore.A("mail.mfa.gov.kg", 300, legitMail))
	unsignedZone := dnscore.NewZone("unsigned.kg")
	unsignedZone.MustAdd(dnscore.A("www.unsigned.kg", 300, legitMail))
	authSrv := NewServer()
	authSrv.AddZone(w.mfaZone)
	authSrv.AddZone(unsignedZone)
	w.transport.Register(infocomIP, authSrv)

	// Attacker server: answers for mfa.gov.kg, unsigned.
	evilZone := dnscore.NewZone("mfa.gov.kg")
	evilZone.MustAdd(dnscore.A("mail.mfa.gov.kg", 300, evilMail))
	evilHome := dnscore.NewZone("kg-infocom.ru")
	evilHome.MustAdd(dnscore.A("ns1.kg-infocom.ru", 3600, attackerNS))
	w.evilSrv = NewServer()
	w.evilSrv.AddZone(evilZone)
	w.evilSrv.AddZone(evilHome)
	w.transport.Register(attackerNS, w.evilSrv)

	w.sign(t)
	w.resolver = NewResolver(w.transport, []netip.Addr{rootIP})
	w.resolver.SetTrustAnchor(w.rootKey.DNSKEY())
	return w
}

func (w *signedWorld) sign(t *testing.T) {
	t.Helper()
	for _, pair := range []struct {
		z *dnscore.Zone
		k *dnscore.ZoneKey
	}{{w.rootZone, w.rootKey}, {w.kgZone, w.kgKey}, {w.mfaZone, w.mfaKey}} {
		if err := dnscore.SignZone(pair.z, pair.k); err != nil {
			t.Fatal(err)
		}
	}
}

func TestResolveSecureFullChain(t *testing.T) {
	w := newSignedWorld(t)
	rrs, status, err := w.resolver.ResolveSecure("mail.mfa.gov.kg", dnscore.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if status != dnscore.StatusSecure {
		t.Fatalf("status = %s", status)
	}
	if len(rrs) != 1 || rrs[0].Addr() != legitMail {
		t.Fatalf("answer = %v", rrs)
	}
}

func TestResolveSecureUnsignedDelegation(t *testing.T) {
	w := newSignedWorld(t)
	_, status, err := w.resolver.ResolveSecure("www.unsigned.kg", dnscore.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if status != dnscore.StatusInsecure {
		t.Fatalf("unsigned delegation status = %s", status)
	}
}

// TestHijackWithDSStripping is the paper's §2.2 scenario: the attacker who
// rewrites the delegation also removes the DS, so validation degrades to
// Insecure — the resolution succeeds, pointing at the attacker, and
// DNSSEC raises no alarm. The Secure→Insecure transition is the signal.
func TestHijackWithDSStripping(t *testing.T) {
	w := newSignedWorld(t)

	// Pre-hijack baseline.
	_, status, err := w.resolver.ResolveSecure("mail.mfa.gov.kg", dnscore.TypeA)
	if err != nil || status != dnscore.StatusSecure {
		t.Fatalf("baseline: %s, %v", status, err)
	}

	// The hijack: delegation swapped AND DS stripped at the registry.
	if err := w.kgZone.Replace("mfa.gov.kg", dnscore.TypeNS, dnscore.RRSet{
		dnscore.NS("mfa.gov.kg", 3600, "ns1.kg-infocom.ru"),
	}); err != nil {
		t.Fatal(err)
	}
	w.kgZone.RemoveSet("mfa.gov.kg", dnscore.TypeDS)
	w.sign(t) // the registry re-signs its own zone; the chain is "valid"

	rrs, status, err := w.resolver.ResolveSecure("mail.mfa.gov.kg", dnscore.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if status != dnscore.StatusInsecure {
		t.Fatalf("post-hijack status = %s, want insecure (DNSSEC silently bypassed)", status)
	}
	if rrs[0].Addr() != evilMail {
		t.Fatalf("post-hijack answer = %v", rrs)
	}
}

// TestHijackWithoutDSStrippingIsBogus: if the attacker forgets to strip
// the DS, validating resolvers reject the forged answers.
func TestHijackWithoutDSStrippingIsBogus(t *testing.T) {
	w := newSignedWorld(t)
	if err := w.kgZone.Replace("mfa.gov.kg", dnscore.TypeNS, dnscore.RRSet{
		dnscore.NS("mfa.gov.kg", 3600, "ns1.kg-infocom.ru"),
	}); err != nil {
		t.Fatal(err)
	}
	w.sign(t) // DS still present

	_, status, err := w.resolver.ResolveSecure("mail.mfa.gov.kg", dnscore.TypeA)
	if status != dnscore.StatusBogus {
		t.Fatalf("status = %s, want bogus", status)
	}
	if err == nil {
		t.Fatal("bogus resolution returned no error")
	}
}

func TestResolveSecureDetectsForgedDS(t *testing.T) {
	w := newSignedWorld(t)
	// Replace the kg zone's DS for mfa.gov.kg with one for a key the
	// attacker controls, WITHOUT re-signing (the attacker cannot sign the
	// registry zone).
	evilKey := dnscore.NewZoneKey("mfa.gov.kg", 666)
	if err := w.kgZone.Replace("mfa.gov.kg", dnscore.TypeDS, dnscore.RRSet{evilKey.DS()}); err != nil {
		t.Fatal(err)
	}
	_, status, err := w.resolver.ResolveSecure("mail.mfa.gov.kg", dnscore.TypeA)
	if status != dnscore.StatusBogus || err == nil {
		t.Fatalf("forged DS: status=%s err=%v", status, err)
	}
	if !strings.Contains(err.Error(), "DS") {
		t.Fatalf("error should mention DS validation: %v", err)
	}
}

func TestResolveSecureNoAnchor(t *testing.T) {
	w := newSignedWorld(t)
	bare := NewResolver(w.transport, []netip.Addr{rootIP})
	if _, _, err := bare.ResolveSecure("mail.mfa.gov.kg", dnscore.TypeA); err != ErrNoTrustAnchor {
		t.Fatalf("err = %v", err)
	}
}

func TestResolveSecureWrongAnchor(t *testing.T) {
	w := newSignedWorld(t)
	w.resolver.SetTrustAnchor(dnscore.NewZoneKey("", 999).DNSKEY())
	_, status, err := w.resolver.ResolveSecure("mail.mfa.gov.kg", dnscore.TypeA)
	if status != dnscore.StatusBogus || err == nil {
		t.Fatalf("wrong anchor: status=%s err=%v", status, err)
	}
}

func TestResolveSecureNXDomainKeepsStatus(t *testing.T) {
	w := newSignedWorld(t)
	_, _, err := w.resolver.ResolveSecure("absent.mfa.gov.kg", dnscore.TypeA)
	if err == nil {
		t.Fatal("NXDOMAIN resolved")
	}
}

func TestPlainResolveUnaffectedBySigning(t *testing.T) {
	w := newSignedWorld(t)
	addrs, err := w.resolver.ResolveA("mail.mfa.gov.kg")
	if err != nil {
		t.Fatal(err)
	}
	if addrs[0] != legitMail {
		t.Fatalf("plain resolution = %v", addrs)
	}
}
