package x509lite

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"retrodns/internal/dnscore"
	"retrodns/internal/simtime"
)

func testCert(key *SigningKey) *Certificate {
	c := &Certificate{
		Serial:    1394170951,
		Subject:   "mail.kyvernisi.gr",
		SANs:      []dnscore.Name{"mail.kyvernisi.gr"},
		Issuer:    "Let's Encrypt",
		NotBefore: simtime.MustParse("2019-04-22"),
		NotAfter:  simtime.MustParse("2019-07-21"),
		Method:    ValidationDNS01,
	}
	key.Sign(c)
	return c
}

func TestFingerprintMemoized(t *testing.T) {
	key := NewSigningKey("le-key-1", 42)
	c := testCert(key)
	fp := c.Fingerprint()
	if got := c.Fingerprint(); got != fp {
		t.Fatalf("memoized fingerprint changed: %s != %s", got, fp)
	}
	// Re-signing invalidates the memo: the digest covers the signature.
	c.Serial++
	key.Sign(c)
	if got := c.Fingerprint(); got == fp {
		t.Fatal("fingerprint unchanged after re-sign")
	}
	// A clone carries its own memo and diverges independently.
	clone := c.Clone()
	if clone.Fingerprint() != c.Fingerprint() {
		t.Fatal("clone fingerprint differs from original")
	}
	clone.NotAfter++
	key.Sign(clone)
	if clone.Fingerprint() == c.Fingerprint() {
		t.Fatal("mutated clone shares original's fingerprint")
	}
	if got := c.Fingerprint(); got == fp {
		t.Fatal("original perturbed by clone mutation")
	}
}

func TestSignVerify(t *testing.T) {
	key := NewSigningKey("le-key-1", 42)
	c := testCert(key)
	if err := key.Verify(c, simtime.MustParse("2019-04-23")); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	key := NewSigningKey("le-key-1", 42)
	c := testCert(key)
	c.SANs = []dnscore.Name{"mail.kyvernisi.gr", "attacker.example"}
	if err := key.Verify(c, simtime.MustParse("2019-04-23")); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered SANs: %v", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	key := NewSigningKey("le-key-1", 42)
	other := NewSigningKey("comodo-key-1", 42)
	c := testCert(key)
	if err := other.Verify(c, simtime.MustParse("2019-04-23")); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong key: %v", err)
	}
	// Forged IssuerID without the key's MAC must also fail.
	c2 := testCert(key)
	c2.IssuerID = other.ID
	if err := other.Verify(c2, simtime.MustParse("2019-04-23")); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged issuer id: %v", err)
	}
}

func TestVerifyRejectsOutOfWindow(t *testing.T) {
	key := NewSigningKey("le-key-1", 42)
	c := testCert(key)
	for _, date := range []string{"2019-04-21", "2019-07-21", "2020-01-01"} {
		if err := key.Verify(c, simtime.MustParse(date)); !errors.Is(err, ErrExpired) {
			t.Errorf("date %s: %v", date, err)
		}
	}
}

func TestVerifyRejectsEmptySANs(t *testing.T) {
	key := NewSigningKey("le-key-1", 42)
	c := testCert(key)
	c.SANs = nil
	if err := key.Verify(c, simtime.MustParse("2019-04-23")); !errors.Is(err, ErrNoSANs) {
		t.Fatalf("empty SANs: %v", err)
	}
}

func TestFingerprintDistinguishesReissue(t *testing.T) {
	key := NewSigningKey("le-key-1", 42)
	a := testCert(key)
	b := testCert(key)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical certs have different fingerprints")
	}
	c := testCert(key)
	c.Serial++
	key.Sign(c)
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different serial, same fingerprint")
	}
}

func TestFingerprintSANOrderInsensitive(t *testing.T) {
	key := NewSigningKey("k", 1)
	mk := func(sans ...dnscore.Name) *Certificate {
		c := &Certificate{Serial: 5, Subject: sans[0], SANs: sans, Issuer: "X",
			NotBefore: 0, NotAfter: 90}
		key.Sign(c)
		return c
	}
	a := mk("a.example.com", "b.example.com")
	b := mk("b.example.com", "a.example.com")
	// Subject differs, so compare canonical SAN handling via signature of
	// same-subject variants.
	c1 := mk("a.example.com", "b.example.com")
	c2 := &Certificate{Serial: 5, Subject: "a.example.com",
		SANs: []dnscore.Name{"b.example.com", "a.example.com"}, Issuer: "X",
		NotBefore: 0, NotAfter: 90}
	key.Sign(c2)
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatal("SAN order changed fingerprint")
	}
	_ = a
	_ = b
}

func TestCovers(t *testing.T) {
	c := &Certificate{SANs: []dnscore.Name{"mail.example.com", "*.portal.example.com"}}
	cases := []struct {
		name dnscore.Name
		want bool
	}{
		{"mail.example.com", true},
		{"other.example.com", false},
		{"login.portal.example.com", true},
		{"a.b.portal.example.com", false}, // wildcards are single-label
		{"portal.example.com", false},
	}
	for _, cse := range cases {
		if got := c.Covers(cse.name); got != cse.want {
			t.Errorf("Covers(%s) = %v, want %v", cse.name, got, cse.want)
		}
	}
}

func TestLifetimeAndString(t *testing.T) {
	key := NewSigningKey("le-key-1", 42)
	c := testCert(key)
	if c.Lifetime() != 90 {
		t.Errorf("Lifetime = %d", c.Lifetime())
	}
	s := c.String()
	for _, want := range []string{"mail.kyvernisi.gr", "Let's Encrypt", "1394170951"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
	if len(c.Fingerprint().Hex()) != 64 {
		t.Errorf("Hex fingerprint length wrong")
	}
}

func TestTrustStore(t *testing.T) {
	store := NewTrustStore()
	le := NewSigningKey("le-key-1", 42)
	internal := NewSigningKey("corp-ca", 43)
	store.Include(le, ProgramApple, ProgramMozilla)
	store.Include(internal) // registered but trusted nowhere

	c := testCert(le)
	at := simtime.MustParse("2019-04-23")
	if !store.BrowserTrusted(c, at) {
		t.Fatal("LE cert not browser-trusted")
	}
	programs := store.TrustedBy(c, at)
	if len(programs) != 2 {
		t.Fatalf("TrustedBy = %v", programs)
	}

	ic := testCert(internal)
	if store.BrowserTrusted(ic, at) {
		t.Fatal("internal CA cert browser-trusted")
	}
	if store.TrustedBy(ic, at) != nil {
		t.Fatal("internal CA cert trusted by a program")
	}

	// Unknown issuer is untrusted.
	rogue := NewSigningKey("rogue", 1)
	rc := testCert(rogue)
	if store.BrowserTrusted(rc, at) {
		t.Fatal("unknown issuer trusted")
	}

	// Expired certificates lose trust.
	if store.BrowserTrusted(c, simtime.MustParse("2020-01-01")) {
		t.Fatal("expired cert trusted")
	}

	if _, ok := store.Key("le-key-1"); !ok {
		t.Fatal("key lookup failed")
	}
	if _, ok := store.Key("absent"); ok {
		t.Fatal("phantom key found")
	}
}

// Property: signing is deterministic for a fixed key and certificate body,
// and any single-field perturbation changes the MAC validity.
func TestSignatureBindingProperty(t *testing.T) {
	key := NewSigningKey("le-key-1", 42)
	f := func(serial uint64, shiftValidity bool, flipName bool) bool {
		c := &Certificate{
			Serial:    serial,
			Subject:   "host.example.com",
			SANs:      []dnscore.Name{"host.example.com"},
			Issuer:    "Test CA",
			NotBefore: 10,
			NotAfter:  100,
			Method:    ValidationDNS01,
		}
		key.Sign(c)
		if err := key.Verify(c, 50); err != nil {
			return false
		}
		mutant := c.Clone()
		switch {
		case shiftValidity:
			mutant.NotAfter++
		case flipName:
			mutant.SANs[0] = "evil.example.com"
		default:
			mutant.Serial++
		}
		return key.Verify(mutant, 50) != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
