package x509lite

import (
	"encoding/hex"
	"errors"
	"fmt"

	"retrodns/internal/dnscore"
	"retrodns/internal/simtime"
)

// Certificate chains. Real CAs do not sign leaves with their root keys:
// an offline root signs one or more intermediates, and intermediates sign
// leaves. The chain a server presents is verified link by link up to a
// root-program member. In this package's symmetric-crypto model, a CA
// certificate carries the key material its subject signs children with
// (the analogue of the public key in a real CA certificate), so verifiers
// can check child signatures without out-of-band key distribution.

// Chain verification errors.
var (
	ErrEmptyChain     = errors.New("x509lite: empty chain")
	ErrNilCertificate = errors.New("x509lite: nil certificate in chain")
	ErrBrokenChain    = errors.New("x509lite: chain link does not verify")
	ErrNotCA          = errors.New("x509lite: intermediate is not a CA certificate")
	ErrUntrustedRoot  = errors.New("x509lite: chain does not terminate at a trusted root")
	ErrLeafIsCA       = errors.New("x509lite: leaf certificate is a CA certificate")
	ErrChainKeyMix    = errors.New("x509lite: certificate not signed by the presented intermediate")
	ErrMissingSubject = errors.New("x509lite: CA certificate carries no subject key")
)

// IssueIntermediate creates an intermediate CA certificate signed by the
// parent key, together with the signing key the intermediate uses for its
// children. Determinism follows from the seed.
func IssueIntermediate(parent *SigningKey, name dnscore.Name, keyID string, seed int64, notBefore, notAfter simtime.Date) (*Certificate, *SigningKey) {
	child := NewSigningKey(keyID, seed)
	cert := &Certificate{
		Serial:        uint64(seed),
		Subject:       name,
		SANs:          []dnscore.Name{name},
		Issuer:        string(name) + " parent",
		NotBefore:     notBefore,
		NotAfter:      notAfter,
		Method:        ValidationManual,
		IsCA:          true,
		SubjectKeyID:  child.ID,
		SubjectKeyHex: hex.EncodeToString(child.key),
	}
	parent.Sign(cert)
	return cert, child
}

// SubjectSigningKey reconstructs the signing key a CA certificate's
// subject uses, from the key material the certificate carries.
func (c *Certificate) SubjectSigningKey() (*SigningKey, error) {
	if !c.IsCA {
		return nil, ErrNotCA
	}
	if c.SubjectKeyID == "" || c.SubjectKeyHex == "" {
		return nil, ErrMissingSubject
	}
	key, err := hex.DecodeString(c.SubjectKeyHex)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMissingSubject, err)
	}
	return &SigningKey{ID: c.SubjectKeyID, key: key}, nil
}

// VerifyChain validates a leaf-first chain at the given date: each
// certificate must be signed by the next one's subject key, every
// non-leaf must be a CA certificate, and the last certificate must be
// signed by a key included in at least one root program. It returns the
// root programs trusting the chain.
func (s *TrustStore) VerifyChain(chain []*Certificate, at simtime.Date) ([]RootProgram, error) {
	if len(chain) == 0 {
		return nil, ErrEmptyChain
	}
	// A scanner handing over a partially-decoded presentation can leave
	// nil slots; data must never turn into a dereference panic here.
	for i, c := range chain {
		if c == nil {
			return nil, fmt.Errorf("%w: position %d", ErrNilCertificate, i)
		}
	}
	leaf := chain[0]
	if leaf.IsCA {
		return nil, ErrLeafIsCA
	}
	// Verify each link against the next certificate's subject key.
	for i := 0; i < len(chain)-1; i++ {
		issuerCert := chain[i+1]
		if !issuerCert.IsCA {
			return nil, fmt.Errorf("%w: position %d", ErrNotCA, i+1)
		}
		issuerKey, err := issuerCert.SubjectSigningKey()
		if err != nil {
			return nil, err
		}
		if chain[i].IssuerID != issuerKey.ID {
			return nil, fmt.Errorf("%w: %q signed by %q, intermediate key is %q",
				ErrChainKeyMix, chain[i].Subject, chain[i].IssuerID, issuerKey.ID)
		}
		if err := issuerKey.Verify(chain[i], at); err != nil {
			return nil, fmt.Errorf("%w: position %d: %v", ErrBrokenChain, i, err)
		}
	}
	// The chain's top certificate must verify under a registered root key
	// included in a program.
	top := chain[len(chain)-1]
	programs := s.TrustedBy(top, at)
	if len(programs) == 0 {
		// Direct root issuance: a single-certificate chain whose issuer
		// is itself a program member is also acceptable.
		return nil, fmt.Errorf("%w: top issuer %q", ErrUntrustedRoot, top.IssuerID)
	}
	return programs, nil
}

// BrowserTrustedChain reports whether any root program trusts the chain.
func (s *TrustStore) BrowserTrustedChain(chain []*Certificate, at simtime.Date) bool {
	programs, err := s.VerifyChain(chain, at)
	return err == nil && len(programs) > 0
}
