package x509lite

import (
	"sort"
	"sync"

	"retrodns/internal/simtime"
)

// RootProgram identifies a browser/OS root program. The paper marks a
// certificate browser-trusted if Apple, Microsoft, or Mozilla trusts its
// issuer (the Chrome root store postdates the study window).
type RootProgram string

// The three root programs the paper consults.
const (
	ProgramApple     RootProgram = "apple"
	ProgramMicrosoft RootProgram = "microsoft"
	ProgramMozilla   RootProgram = "mozilla"
)

// AllPrograms lists the root programs in a stable order.
var AllPrograms = []RootProgram{ProgramApple, ProgramMicrosoft, ProgramMozilla}

// TrustStore records which issuing-CA keys each root program includes, and
// exposes the paper's "browser-trusted" predicate.
type TrustStore struct {
	mu       sync.RWMutex
	included map[RootProgram]map[string]bool // program → issuer key ID
	keys     map[string]*SigningKey          // issuer key ID → key
}

// NewTrustStore creates an empty store.
func NewTrustStore() *TrustStore {
	inc := make(map[RootProgram]map[string]bool, len(AllPrograms))
	for _, p := range AllPrograms {
		inc[p] = make(map[string]bool)
	}
	return &TrustStore{included: inc, keys: make(map[string]*SigningKey)}
}

// Include adds the CA key to the given root programs and registers the key
// for verification. An empty program list registers the key without
// trusting it anywhere (an internal/enterprise CA).
func (s *TrustStore) Include(key *SigningKey, programs ...RootProgram) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[key.ID] = key
	for _, p := range programs {
		if m, ok := s.included[p]; ok {
			m[key.ID] = true
		}
	}
}

// Key returns the registered signing key with the given ID.
func (s *TrustStore) Key(id string) (*SigningKey, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k, ok := s.keys[id]
	return k, ok
}

// TrustedBy returns the root programs that include the certificate's
// issuer, provided the certificate verifies at the given date.
func (s *TrustStore) TrustedBy(c *Certificate, at simtime.Date) []RootProgram {
	s.mu.RLock()
	key, ok := s.keys[c.IssuerID]
	s.mu.RUnlock()
	if !ok || key.Verify(c, at) != nil {
		return nil
	}
	var programs []RootProgram
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range AllPrograms {
		if s.included[p][c.IssuerID] {
			programs = append(programs, p)
		}
	}
	sort.Slice(programs, func(i, j int) bool { return programs[i] < programs[j] })
	return programs
}

// BrowserTrusted implements the paper's predicate: trusted by Apple,
// Microsoft, or Mozilla (any one suffices) with a valid signature and
// in-window date.
func (s *TrustStore) BrowserTrusted(c *Certificate, at simtime.Date) bool {
	return len(s.TrustedBy(c, at)) > 0
}
