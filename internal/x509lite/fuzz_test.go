package x509lite

import (
	"errors"
	"fmt"
	"testing"

	"retrodns/internal/dnscore"
	"retrodns/internal/simtime"
)

// FuzzChainVerify assembles certificate chains of fuzz-chosen depth,
// applies one fuzz-chosen corruption (nil slot, flipped CA bit, stripped
// subject key, broken signature, truncation, swap, emptying), and checks
// that VerifyChain never panics, rejects every corrupted chain with one of
// its typed sentinels, and still accepts the untouched chain.
func FuzzChainVerify(f *testing.F) {
	for mut := uint8(0); mut < 8; mut++ {
		f.Add(uint8(0), mut, uint8(0), int16(100))
		f.Add(uint8(2), mut, uint8(1), int16(500))
	}
	f.Add(uint8(1), uint8(4), uint8(7), int16(-50))
	f.Add(uint8(2), uint8(1), uint8(255), int16(2000))

	sentinels := []error{
		ErrEmptyChain, ErrNilCertificate, ErrBrokenChain, ErrNotCA,
		ErrUntrustedRoot, ErrLeafIsCA, ErrChainKeyMix, ErrMissingSubject,
	}

	f.Fuzz(func(t *testing.T, depth, mutation, pos uint8, at int16) {
		store := NewTrustStore()
		root := NewSigningKey("fuzz-root", 1)
		store.Include(root, ProgramMozilla)

		// Top-down issuance: root signs the first intermediate, each
		// intermediate signs the next, the last key signs the leaf.
		signer := root
		var inters []*Certificate
		for i := 0; i < int(depth%3); i++ {
			cert, key := IssueIntermediate(signer, dnscore.Name(fmt.Sprintf("inter%d.example", i)),
				fmt.Sprintf("fuzz-inter-%d", i), int64(i+2), 0, 1000)
			inters = append(inters, cert)
			signer = key
		}
		leaf := &Certificate{
			Serial: 99, Subject: "www.example.com", SANs: []dnscore.Name{"www.example.com"},
			Issuer: "fuzz", NotBefore: 0, NotAfter: 1000, Method: ValidationDNS01,
		}
		signer.Sign(leaf)
		chain := []*Certificate{leaf}
		for i := len(inters) - 1; i >= 0; i-- {
			chain = append(chain, inters[i])
		}

		date := simtime.Date(at)
		clean := false
		p := int(pos) % len(chain)
		switch mutation % 8 {
		case 0:
			clean = true
			// Pin the date inside every certificate's validity so the
			// clean chain must verify.
			date = simtime.Date(int(at%1000+1000) % 1000)
		case 1:
			chain[p] = nil
		case 2:
			c := chain[p].Clone()
			c.IsCA = !c.IsCA
			chain[p] = c
		case 3:
			c := chain[p].Clone()
			c.SubjectKeyHex = ""
			chain[p] = c
		case 4:
			c := chain[p].Clone()
			c.Signature = append(append([]byte(nil), c.Signature...), 0x5a)
			chain[p] = c
		case 5:
			chain = chain[:len(chain)-1]
			if len(chain) == 0 {
				chain = nil
			}
		case 6:
			chain[0], chain[len(chain)-1] = chain[len(chain)-1], chain[0]
		case 7:
			chain = nil
		}

		programs, err := store.VerifyChain(chain, date)
		if clean {
			if err != nil || len(programs) == 0 {
				t.Fatalf("clean chain (depth %d) rejected at %s: %v", len(chain), date, err)
			}
		} else if err != nil {
			known := false
			for _, s := range sentinels {
				if errors.Is(err, s) {
					known = true
					break
				}
			}
			if !known {
				t.Fatalf("untyped chain error: %v", err)
			}
		}
		// BrowserTrustedChain is the same predicate, never divergent.
		if got, want := store.BrowserTrustedChain(chain, date), err == nil && len(programs) > 0; got != want {
			t.Fatalf("BrowserTrustedChain = %v, VerifyChain said %v (err %v)", got, want, err)
		}
	})
}

// TestVerifyChainNilSlots pins the regression the fuzz target exists for:
// nil chain elements must return ErrNilCertificate, not dereference.
func TestVerifyChainNilSlots(t *testing.T) {
	store := NewTrustStore()
	root := NewSigningKey("nil-root", 1)
	store.Include(root, ProgramMozilla)
	leaf := &Certificate{
		Serial: 1, Subject: "www.example.com", SANs: []dnscore.Name{"www.example.com"},
		NotBefore: 0, NotAfter: 100, Method: ValidationDNS01,
	}
	root.Sign(leaf)
	for _, chain := range [][]*Certificate{
		{nil},
		{nil, nil},
		{leaf, nil},
		{nil, leaf},
	} {
		if _, err := store.VerifyChain(chain, 10); !errors.Is(err, ErrNilCertificate) {
			t.Errorf("VerifyChain(%v) err = %v, want ErrNilCertificate", chain, err)
		}
	}
	if _, err := store.VerifyChain([]*Certificate{leaf}, 10); err != nil {
		t.Errorf("valid single-cert chain rejected: %v", err)
	}
}
