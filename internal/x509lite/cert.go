// Package x509lite models TLS certificates at the granularity the paper's
// methodology needs: serials, subject alternative names, issuer, validity
// windows on the simulation calendar, browser trust, and revocation. The
// cryptography is structural — HMAC-SHA256 signatures over a canonical
// encoding with per-CA keys — which is enough to model trust chains,
// mis-issuance, and verification, while keeping the package stdlib-only.
package x509lite

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"retrodns/internal/dnscore"
	"retrodns/internal/simtime"
)

// Fingerprint is the SHA-256 digest of a certificate's canonical encoding;
// it identifies a certificate everywhere in the system (scan records,
// deployment maps, CT entries).
type Fingerprint [sha256.Size]byte

// String renders the fingerprint in abbreviated hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// Hex returns the full hex form.
func (f Fingerprint) Hex() string { return hex.EncodeToString(f[:]) }

// ValidationMethod records how the issuing CA validated domain control.
type ValidationMethod string

// Validation methods offered by the simulated CAs.
const (
	ValidationDNS01  ValidationMethod = "dns-01"
	ValidationHTTP01 ValidationMethod = "http-01"
	// ValidationManual models OV/EV-style out-of-band vetting used by the
	// paid CAs for legitimate long-lived deployments.
	ValidationManual ValidationMethod = "manual"
	// ValidationInternal marks certificates from a private enterprise CA
	// (the paper notes some victims served internal-CA certificates that
	// are not browser-trusted and never appear in CT).
	ValidationInternal ValidationMethod = "internal"
)

// Certificate is a simulated X.509 leaf certificate.
type Certificate struct {
	// Serial is unique per issuer.
	Serial uint64
	// Subject is the common name.
	Subject dnscore.Name
	// SANs lists every DNS name the certificate secures (includes Subject).
	SANs []dnscore.Name
	// Issuer is the display name of the issuing CA (e.g. "Let's Encrypt").
	Issuer string
	// IssuerID is the stable identifier of the issuing CA's signing key.
	IssuerID string
	// NotBefore and NotAfter bound validity (inclusive of NotBefore,
	// exclusive of NotAfter).
	NotBefore, NotAfter simtime.Date
	// Method records the domain-control validation that backed issuance.
	Method ValidationMethod
	// IsCA marks CA certificates (roots and intermediates), which may sign
	// children and may not serve as leaves.
	IsCA bool
	// SubjectKeyID and SubjectKeyHex carry the subject's signing key for
	// CA certificates — the symmetric-model analogue of the public key a
	// real CA certificate binds (chain.go).
	SubjectKeyID  string
	SubjectKeyHex string
	// Signature authenticates the canonical encoding under the issuer key.
	Signature []byte

	// fp memoizes Fingerprint: certificates are immutable once signed and
	// fingerprinted in several hot loops (ScanWeek, BuildMap), so the
	// SHA-256 is computed once and shared. The atomic makes the memo itself
	// safe under concurrent readers; Sign resets it. Because of this field,
	// certificates must not be copied by value — use Clone.
	fp atomic.Pointer[Fingerprint]
}

// Clone returns a deep copy of the certificate's public fields with a
// fresh fingerprint memo. Tests that perturb a certificate start from a
// Clone; copying a Certificate by value is rejected by go vet (the memo
// embeds an atomic).
func (c *Certificate) Clone() *Certificate {
	out := &Certificate{
		Serial:        c.Serial,
		Subject:       c.Subject,
		SANs:          append([]dnscore.Name(nil), c.SANs...),
		Issuer:        c.Issuer,
		IssuerID:      c.IssuerID,
		NotBefore:     c.NotBefore,
		NotAfter:      c.NotAfter,
		Method:        c.Method,
		IsCA:          c.IsCA,
		SubjectKeyID:  c.SubjectKeyID,
		SubjectKeyHex: c.SubjectKeyHex,
		Signature:     append([]byte(nil), c.Signature...),
	}
	return out
}

// Errors from verification.
var (
	ErrBadSignature = errors.New("x509lite: signature verification failed")
	ErrExpired      = errors.New("x509lite: certificate outside validity window")
	ErrNoSANs       = errors.New("x509lite: certificate has no names")
)

// canonical returns the byte string that is hashed and signed. SANs are
// sorted so logically identical certificates have identical encodings.
func (c *Certificate) canonical() []byte {
	sans := make([]string, len(c.SANs))
	for i, s := range c.SANs {
		sans[i] = string(s)
	}
	sort.Strings(sans)
	var b []byte
	b = binary.BigEndian.AppendUint64(b, c.Serial)
	ca := "leaf"
	if c.IsCA {
		ca = "ca"
	}
	for _, field := range []string{string(c.Subject), strings.Join(sans, ","), c.Issuer, c.IssuerID, string(c.Method), ca, c.SubjectKeyID, c.SubjectKeyHex} {
		b = binary.BigEndian.AppendUint32(b, uint32(len(field)))
		b = append(b, field...)
	}
	b = binary.BigEndian.AppendUint64(b, uint64(int64(c.NotBefore)))
	b = binary.BigEndian.AppendUint64(b, uint64(int64(c.NotAfter)))
	return b
}

// Fingerprint computes the certificate's identity digest, memoized after
// the first call. The signature is included so re-issued certificates with
// fresh signatures are distinct; Sign invalidates the memo.
func (c *Certificate) Fingerprint() Fingerprint {
	if p := c.fp.Load(); p != nil {
		return *p
	}
	h := sha256.New()
	h.Write(c.canonical())
	h.Write(c.Signature)
	var out Fingerprint
	copy(out[:], h.Sum(nil))
	c.fp.Store(&out)
	return out
}

// Covers reports whether the certificate secures name, honoring single-
// label wildcards ("*.example.com" covers "mail.example.com" but not
// "a.b.example.com").
func (c *Certificate) Covers(name dnscore.Name) bool {
	for _, san := range c.SANs {
		if san == name {
			return true
		}
		if strings.HasPrefix(string(san), "*.") {
			base := dnscore.Name(strings.TrimPrefix(string(san), "*."))
			if name.Parent() == base {
				return true
			}
		}
	}
	return false
}

// ValidAt reports whether date falls inside the validity window.
func (c *Certificate) ValidAt(date simtime.Date) bool {
	return date >= c.NotBefore && date < c.NotAfter
}

// Lifetime returns the validity span in days.
func (c *Certificate) Lifetime() simtime.Duration {
	return c.NotAfter.Sub(c.NotBefore)
}

// String renders the certificate one line for diagnostics and reports.
func (c *Certificate) String() string {
	sans := make([]string, len(c.SANs))
	for i, s := range c.SANs {
		sans[i] = string(s)
	}
	return fmt.Sprintf("cert %s serial=%d sans=[%s] issuer=%q validity=[%s,%s)",
		c.Fingerprint(), c.Serial, strings.Join(sans, " "), c.Issuer, c.NotBefore, c.NotAfter)
}

// SigningKey is a CA's private signing key (an HMAC key in this model).
type SigningKey struct {
	// ID is the public identifier embedded in certificates as IssuerID.
	ID  string
	key []byte
}

// NewSigningKey derives a deterministic signing key from the CA identifier
// and a seed. Determinism keeps whole-simulation runs reproducible.
func NewSigningKey(id string, seed int64) *SigningKey {
	h := sha256.New()
	fmt.Fprintf(h, "signing-key|%s|%d", id, seed)
	return &SigningKey{ID: id, key: h.Sum(nil)}
}

// Sign seals the certificate under the key, setting IssuerID and Signature.
// Any memoized fingerprint is invalidated: the digest covers the signature.
func (k *SigningKey) Sign(c *Certificate) {
	c.IssuerID = k.ID
	mac := hmac.New(sha256.New, k.key)
	mac.Write(c.canonical())
	c.Signature = mac.Sum(nil)
	c.fp.Store(nil)
}

// Verify checks the certificate's signature under the key and validity at
// the given date.
func (k *SigningKey) Verify(c *Certificate, at simtime.Date) error {
	if len(c.SANs) == 0 {
		return ErrNoSANs
	}
	if c.IssuerID != k.ID {
		return fmt.Errorf("%w: issued by %q, verifying with %q", ErrBadSignature, c.IssuerID, k.ID)
	}
	mac := hmac.New(sha256.New, k.key)
	mac.Write(c.canonical())
	if !hmac.Equal(mac.Sum(nil), c.Signature) {
		return ErrBadSignature
	}
	if !c.ValidAt(at) {
		return fmt.Errorf("%w: at %s, window [%s,%s)", ErrExpired, at, c.NotBefore, c.NotAfter)
	}
	return nil
}
