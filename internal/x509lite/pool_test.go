package x509lite

import (
	"sync"
	"testing"

	"retrodns/internal/dnscore"
)

func poolCert(serial uint64, sans ...dnscore.Name) *Certificate {
	key := NewSigningKey("pool-test", 11)
	c := &Certificate{
		Serial: serial, Subject: sans[0], SANs: sans,
		Issuer: "Pool CA", NotBefore: 0, NotAfter: 100, Method: ValidationDNS01,
	}
	key.Sign(c)
	return c
}

func TestPoolInternDedups(t *testing.T) {
	p := NewPool()
	a := poolCert(1, "www.a.example")
	b := poolCert(1, "www.a.example") // identical bytes, distinct object
	if got := p.Intern(a); got != a {
		t.Fatal("first intern must return the inserted cert")
	}
	if got := p.Intern(b); got != a {
		t.Fatal("identical cert did not dedup to the pooled instance")
	}
	if p.Size() != 1 {
		t.Fatalf("pool size = %d, want 1", p.Size())
	}
	// A reissued cert (different signature) is a distinct identity.
	c := poolCert(1, "www.a.example")
	c.Signature = append([]byte(nil), c.Signature...)
	c.Signature[0] ^= 0xFF
	if got := p.Intern(c); got != c {
		t.Fatal("distinct-signature cert wrongly deduped")
	}
	if p.Size() != 2 {
		t.Fatalf("pool size = %d, want 2", p.Size())
	}
}

func TestPoolNilTolerance(t *testing.T) {
	var p *Pool
	c := poolCert(3, "www.nil.example")
	if got := p.Intern(c); got != c {
		t.Fatal("nil pool must pass certs through")
	}
	if p.Size() != 0 {
		t.Fatal("nil pool size != 0")
	}
	full := NewPool()
	if got := full.Intern(nil); got != nil {
		t.Fatal("nil cert must pass through")
	}
}

func TestPoolInternNameCanonicalizesFirstSeen(t *testing.T) {
	p := NewPool()
	var interned []dnscore.Name
	p.InternName = func(n dnscore.Name) dnscore.Name {
		interned = append(interned, n)
		return n
	}
	c := poolCert(5, "www.b.example", "mail.b.example")
	p.Intern(c)
	if len(interned) != 2 {
		t.Fatalf("InternName ran %d times, want 2 (once per SAN)", len(interned))
	}
	// Lookups never re-canonicalize.
	p.Intern(poolCert(5, "www.b.example", "mail.b.example"))
	if len(interned) != 2 {
		t.Fatalf("lookup re-ran InternName: %d calls", len(interned))
	}
}

func TestPoolConcurrentIntern(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Intern(poolCert(uint64(i%10)+1, "www.c.example"))
			}
		}()
	}
	wg.Wait()
	if p.Size() != 10 {
		t.Fatalf("pool size = %d, want 10", p.Size())
	}
}
