package x509lite

import (
	"sync"
	"sync/atomic"

	"retrodns/internal/dnscore"
)

// Pool deduplicates certificates by Fingerprint. Four years of weekly
// scans observe the same certificate tens of thousands of times — once
// per (IP, scan) — and a feed that parses its input allocates a fresh
// Certificate for every observation. Interning through the pool collapses
// all of them onto one canonical instance, so the corpus stores each
// distinct certificate exactly once and pointer comparisons on certs
// become identity comparisons.
//
// The identity key is the already-memoized Fingerprint (SHA-256 over the
// canonical encoding plus signature), so two certificates intern to the
// same instance iff they are byte-identical — re-issued certificates with
// fresh signatures stay distinct, exactly as the detection method needs.
//
// The pool is safe for concurrent use and lives as long as its owner
// (typically a scanner.Dataset): entries are never evicted, so its size
// is bounded by the number of distinct certificates in the feed, not by
// the number of observations.
type Pool struct {
	// InternName, when set, canonicalizes the SAN strings of a
	// certificate on first insertion (typically through a shared string
	// pool, so SANs repeated across certificate generations share
	// backing bytes). It runs under the stripe lock, before the
	// certificate becomes visible to other interners. Callers must only
	// hand Intern certificates they own at that point: the SAN slice of
	// a first-seen certificate is rewritten in place.
	InternName func(dnscore.Name) dnscore.Name

	stripes [certPoolStripes]certPoolStripe
	size    atomic.Int64
}

// certPoolStripes spreads the pool over independent locks so parallel
// ingest shards do not serialize on one mutex. Must be a power of two.
const certPoolStripes = 32

type certPoolStripe struct {
	mu sync.RWMutex
	m  map[Fingerprint]*Certificate
}

// NewPool returns an empty certificate pool.
func NewPool() *Pool {
	p := &Pool{}
	for i := range p.stripes {
		p.stripes[i].m = make(map[Fingerprint]*Certificate)
	}
	return p
}

// Intern returns the pool's canonical instance for c, inserting c itself
// if its fingerprint is new. A nil pool or certificate passes through
// unchanged. On insertion the certificate's SANs are canonicalized via
// InternName (when set); lookups never mutate anything.
func (p *Pool) Intern(c *Certificate) *Certificate {
	if p == nil || c == nil {
		return c
	}
	fp := c.Fingerprint()
	st := &p.stripes[fp[0]&(certPoolStripes-1)]
	st.mu.RLock()
	got := st.m[fp]
	st.mu.RUnlock()
	if got != nil {
		return got
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if got := st.m[fp]; got != nil {
		return got
	}
	if p.InternName != nil {
		for i, san := range c.SANs {
			c.SANs[i] = p.InternName(san)
		}
	}
	st.m[fp] = c
	p.size.Add(1)
	return c
}

// Size returns the number of distinct certificates interned.
func (p *Pool) Size() int64 {
	if p == nil {
		return 0
	}
	return p.size.Load()
}
