package x509lite

import (
	"errors"
	"testing"

	"retrodns/internal/dnscore"
	"retrodns/internal/simtime"
)

// chainFixture builds root → intermediate → leaf with the root included in
// two programs.
type chainFixture struct {
	store        *TrustStore
	rootKey      *SigningKey
	intermediate *Certificate
	interKey     *SigningKey
	leaf         *Certificate
}

func newChainFixture(t *testing.T) *chainFixture {
	t.Helper()
	f := &chainFixture{store: NewTrustStore()}
	f.rootKey = NewSigningKey("isrg-root-x1", 1)
	f.store.Include(f.rootKey, ProgramApple, ProgramMozilla)
	f.intermediate, f.interKey = IssueIntermediate(f.rootKey, "r3.letsencrypt.example", "le-r3", 7, 0, simtime.StudyEnd)
	f.leaf = &Certificate{
		Serial: 99, Subject: "mail.mfa.gov.kg", SANs: []dnscore.Name{"mail.mfa.gov.kg"},
		Issuer: "Let's Encrypt", NotBefore: 100, NotAfter: 190, Method: ValidationDNS01,
	}
	f.interKey.Sign(f.leaf)
	return f
}

func TestChainVerifies(t *testing.T) {
	f := newChainFixture(t)
	chain := []*Certificate{f.leaf, f.intermediate}
	programs, err := f.store.VerifyChain(chain, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(programs) != 2 {
		t.Fatalf("programs = %v", programs)
	}
	if !f.store.BrowserTrustedChain(chain, 150) {
		t.Fatal("chain not browser trusted")
	}
	// The leaf alone does NOT verify against the store: the intermediate
	// key is not a root-program member.
	if f.store.BrowserTrusted(f.leaf, 150) {
		t.Fatal("leaf trusted without its chain")
	}
}

func TestChainRejectsForgery(t *testing.T) {
	f := newChainFixture(t)

	// Leaf tampered after signing.
	tampered := f.leaf.Clone()
	tampered.SANs = []dnscore.Name{"mail.mfa.gov.kg", "evil.example"}
	if _, err := f.store.VerifyChain([]*Certificate{tampered, f.intermediate}, 150); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("tampered leaf: %v", err)
	}

	// Intermediate swapped for one from an untrusted root.
	rogueRoot := NewSigningKey("rogue-root", 2)
	rogueInter, rogueKey := IssueIntermediate(rogueRoot, "rogue.example", "rogue-r1", 8, 0, simtime.StudyEnd)
	rogueLeaf := f.leaf.Clone()
	rogueKey.Sign(rogueLeaf)
	if _, err := f.store.VerifyChain([]*Certificate{rogueLeaf, rogueInter}, 150); !errors.Is(err, ErrUntrustedRoot) {
		t.Fatalf("rogue chain: %v", err)
	}

	// Leaf signed by one intermediate but presented with another.
	otherInter, _ := IssueIntermediate(f.rootKey, "e1.letsencrypt.example", "le-e1", 9, 0, simtime.StudyEnd)
	if _, err := f.store.VerifyChain([]*Certificate{f.leaf, otherInter}, 150); !errors.Is(err, ErrChainKeyMix) {
		t.Fatalf("mismatched intermediate: %v", err)
	}

	// Expired intermediate breaks the chain.
	shortInter, shortKey := IssueIntermediate(f.rootKey, "old.letsencrypt.example", "le-old", 10, 0, 50)
	shortLeaf := f.leaf.Clone()
	shortKey.Sign(shortLeaf)
	if _, err := f.store.VerifyChain([]*Certificate{shortLeaf, shortInter}, 150); err == nil {
		t.Fatal("expired intermediate accepted")
	}
}

func TestChainStructuralRules(t *testing.T) {
	f := newChainFixture(t)
	if _, err := f.store.VerifyChain(nil, 150); !errors.Is(err, ErrEmptyChain) {
		t.Errorf("empty chain: %v", err)
	}
	// A CA certificate cannot serve as a leaf.
	if _, err := f.store.VerifyChain([]*Certificate{f.intermediate}, 150); !errors.Is(err, ErrLeafIsCA) {
		t.Errorf("CA as leaf: %v", err)
	}
	// A non-CA certificate cannot appear as an intermediate.
	nonCA := f.leaf.Clone()
	if _, err := f.store.VerifyChain([]*Certificate{f.leaf, nonCA}, 150); !errors.Is(err, ErrNotCA) {
		t.Errorf("leaf as intermediate: %v", err)
	}
	// A CA certificate stripped of its subject key is unusable.
	stripped := f.intermediate.Clone()
	stripped.SubjectKeyHex = ""
	if _, err := f.store.VerifyChain([]*Certificate{f.leaf, stripped}, 150); !errors.Is(err, ErrMissingSubject) {
		t.Errorf("stripped subject key: %v", err)
	}
	if _, err := (&Certificate{}).SubjectSigningKey(); !errors.Is(err, ErrNotCA) {
		t.Errorf("SubjectSigningKey on leaf: %v", err)
	}
	bad := f.intermediate.Clone()
	bad.SubjectKeyHex = "zz-not-hex"
	if _, err := bad.SubjectSigningKey(); !errors.Is(err, ErrMissingSubject) {
		t.Errorf("garbage subject key: %v", err)
	}
}

func TestTwoLevelIntermediates(t *testing.T) {
	f := newChainFixture(t)
	// root → intermediate → issuing CA → leaf.
	issuing, issuingKey := IssueIntermediate(f.interKey, "issuing.letsencrypt.example", "le-i1", 11, 0, simtime.StudyEnd)
	leaf := &Certificate{
		Serial: 5, Subject: "vpn.example.org", SANs: []dnscore.Name{"vpn.example.org"},
		Issuer: "Let's Encrypt", NotBefore: 10, NotAfter: 100, Method: ValidationDNS01,
	}
	issuingKey.Sign(leaf)
	chain := []*Certificate{leaf, issuing, f.intermediate}
	if _, err := f.store.VerifyChain(chain, 50); err != nil {
		t.Fatal(err)
	}
	// Dropping the middle link breaks it.
	if _, err := f.store.VerifyChain([]*Certificate{leaf, f.intermediate}, 50); err == nil {
		t.Fatal("gap in chain accepted")
	}
}
