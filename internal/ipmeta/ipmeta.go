// Package ipmeta provides the IP metadata services the paper consumes as
// external data sets: origin-AS lookup (CAIDA Prefix-to-AS), AS-to-
// Organization mapping (CAIDA as2org), and IP geolocation (NetAcuity). The
// implementations are from scratch — a binary prefix trie for longest-
// prefix match and simple keyed tables — loaded from the simulation's own
// announcements rather than external feeds.
package ipmeta

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
)

// ASN is an autonomous system number.
type ASN uint32

// String formats the ASN in the paper's style, e.g. "AS14061".
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// OrgID identifies an organization in the AS-to-Org mapping.
type OrgID string

// CountryCode is an ISO 3166-1 alpha-2 country code.
type CountryCode string

// Unknown sentinel values returned when a lookup has no coverage.
const (
	UnknownASN     ASN         = 0
	UnknownOrg     OrgID       = ""
	UnknownCountry CountryCode = "??"
)

// trieNode is a node of the binary prefix trie.
type trieNode struct {
	children [2]*trieNode
	asn      ASN
	hasASN   bool
}

// PrefixTable maps IPv4 prefixes to origin ASNs with longest-prefix-match
// semantics, the query CAIDA pfx2as answers. It is safe for concurrent
// reads after construction; Announce may be interleaved with lookups.
type PrefixTable struct {
	mu   sync.RWMutex
	root *trieNode
	n    int
}

// NewPrefixTable creates an empty table.
func NewPrefixTable() *PrefixTable {
	return &PrefixTable{root: &trieNode{}}
}

// Announce maps prefix to origin asn, replacing any previous announcement
// of the identical prefix. IPv6 prefixes are rejected (the study, like the
// paper's, is IPv4-only).
func (t *PrefixTable) Announce(prefix netip.Prefix, asn ASN) error {
	if !prefix.Addr().Is4() {
		return fmt.Errorf("ipmeta: only IPv4 prefixes supported, got %s", prefix)
	}
	if prefix.Bits() < 0 || prefix.Bits() > 32 {
		return fmt.Errorf("ipmeta: bad prefix length %d", prefix.Bits())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	node := t.root
	addr := ipv4ToUint(prefix.Addr())
	for i := 0; i < prefix.Bits(); i++ {
		bit := (addr >> (31 - i)) & 1
		if node.children[bit] == nil {
			node.children[bit] = &trieNode{}
		}
		node = node.children[bit]
	}
	if !node.hasASN {
		t.n++
	}
	node.asn, node.hasASN = asn, true
	return nil
}

// MustAnnounce is Announce for static tables; it panics on error.
func (t *PrefixTable) MustAnnounce(prefix string, asn ASN) {
	if err := t.Announce(netip.MustParsePrefix(prefix), asn); err != nil {
		panic(err)
	}
}

// OriginASN returns the origin AS of the longest announced prefix covering
// addr, or UnknownASN when nothing covers it.
func (t *PrefixTable) OriginASN(addr netip.Addr) ASN {
	if !addr.Is4() {
		return UnknownASN
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	node := t.root
	best := UnknownASN
	if node.hasASN {
		best = node.asn
	}
	a := ipv4ToUint(addr)
	for i := 0; i < 32 && node != nil; i++ {
		bit := (a >> (31 - i)) & 1
		node = node.children[bit]
		if node != nil && node.hasASN {
			best = node.asn
		}
	}
	return best
}

// Len returns the number of announced prefixes.
func (t *PrefixTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

func ipv4ToUint(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Org describes one organization in the AS-to-Org mapping.
type Org struct {
	ID      OrgID
	Name    string
	Country CountryCode
}

// OrgTable maps ASNs to organizations, the query CAIDA as2org answers. The
// paper uses it to decide whether a transient deployment's ASN is
// organizationally related to the stable deployment's ASN (e.g. Amazon's
// AS16509 and AS14618).
type OrgTable struct {
	mu    sync.RWMutex
	byASN map[ASN]OrgID
	orgs  map[OrgID]Org
	names map[ASN]string
}

// NewOrgTable creates an empty mapping.
func NewOrgTable() *OrgTable {
	return &OrgTable{byASN: make(map[ASN]OrgID), orgs: make(map[OrgID]Org), names: make(map[ASN]string)}
}

// AddOrg registers an organization.
func (t *OrgTable) AddOrg(org Org) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.orgs[org.ID] = org
}

// Assign maps an ASN (with its display name) to an organization.
func (t *OrgTable) Assign(asn ASN, name string, org OrgID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byASN[asn] = org
	t.names[asn] = name
}

// OrgOf returns the organization owning asn, or UnknownOrg.
func (t *OrgTable) OrgOf(asn ASN) OrgID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.byASN[asn]
}

// NameOf returns the display name of asn, or "AS<n>" when unregistered.
func (t *OrgTable) NameOf(asn ASN) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n, ok := t.names[asn]; ok {
		return n
	}
	return asn.String()
}

// SameOrg reports whether two ASNs belong to the same organization. Unknown
// ASNs are never the same org (the detector must not suppress a transient
// because both sides are unmapped).
func (t *OrgTable) SameOrg(a, b ASN) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	oa, ok := t.byASN[a]
	if !ok || oa == UnknownOrg {
		return false
	}
	ob, ok := t.byASN[b]
	return ok && oa == ob
}

// Siblings returns every ASN assigned to the same org as asn, including
// itself; nil when unmapped.
func (t *OrgTable) Siblings(asn ASN) []ASN {
	t.mu.RLock()
	defer t.mu.RUnlock()
	org, ok := t.byASN[asn]
	if !ok {
		return nil
	}
	var out []ASN
	for a, o := range t.byASN {
		if o == org {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// geoRange is a half-open IPv4 range mapped to a country.
type geoRange struct {
	lo, hi uint32 // [lo, hi)
	cc     CountryCode
}

// GeoTable maps IP addresses to countries, the query NetAcuity answers.
// Ranges are kept sorted for binary-search lookups.
type GeoTable struct {
	mu     sync.RWMutex
	ranges []geoRange
	sorted bool
}

// NewGeoTable creates an empty geolocation table.
func NewGeoTable() *GeoTable {
	return &GeoTable{}
}

// AddRange maps [lo, hi) to cc. Overlapping ranges resolve to whichever
// sorts later (last-writer-wins on ties is acceptable for the simulation,
// which never creates overlaps).
func (t *GeoTable) AddRange(lo, hi netip.Addr, cc CountryCode) error {
	if !lo.Is4() || !hi.Is4() {
		return fmt.Errorf("ipmeta: geolocation ranges are IPv4-only")
	}
	l, h := ipv4ToUint(lo), ipv4ToUint(hi)
	if l >= h {
		return fmt.Errorf("ipmeta: empty range %s-%s", lo, hi)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ranges = append(t.ranges, geoRange{lo: l, hi: h, cc: cc})
	t.sorted = false
	return nil
}

// AddPrefix maps every address of an IPv4 prefix to cc.
func (t *GeoTable) AddPrefix(prefix netip.Prefix, cc CountryCode) error {
	if !prefix.Addr().Is4() {
		return fmt.Errorf("ipmeta: geolocation ranges are IPv4-only")
	}
	lo := ipv4ToUint(prefix.Masked().Addr())
	end := uint64(lo) + uint64(1)<<(32-prefix.Bits())
	hi := uint32(end)
	if end >= 1<<32 { // prefix reaches the top of the space; drop the
		hi = ^uint32(0) // broadcast address rather than wrap to zero
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ranges = append(t.ranges, geoRange{lo: lo, hi: hi, cc: cc})
	t.sorted = false
	return nil
}

// MustAddPrefix is AddPrefix for static tables; it panics on error.
func (t *GeoTable) MustAddPrefix(prefix string, cc CountryCode) {
	if err := t.AddPrefix(netip.MustParsePrefix(prefix), cc); err != nil {
		panic(err)
	}
}

// Country returns the country covering addr, or UnknownCountry.
func (t *GeoTable) Country(addr netip.Addr) CountryCode {
	if !addr.Is4() {
		return UnknownCountry
	}
	t.mu.Lock()
	if !t.sorted {
		sort.Slice(t.ranges, func(i, j int) bool { return t.ranges[i].lo < t.ranges[j].lo })
		t.sorted = true
	}
	ranges := t.ranges
	t.mu.Unlock()

	a := ipv4ToUint(addr)
	// Find the last range starting at or before a, then walk back through
	// any nested ranges that also start at or before it. Later entries are
	// more specific (the simulation nests at most a handful deep), so the
	// first hit walking backwards is the narrowest match.
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].lo > a })
	for j := i - 1; j >= 0; j-- {
		if a < ranges[j].hi {
			return ranges[j].cc
		}
	}
	return UnknownCountry
}

// Directory bundles the three services the way the pipeline consumes them.
type Directory struct {
	Prefixes *PrefixTable
	Orgs     *OrgTable
	Geo      *GeoTable
}

// NewDirectory creates an empty directory with all three tables.
func NewDirectory() *Directory {
	return &Directory{
		Prefixes: NewPrefixTable(),
		Orgs:     NewOrgTable(),
		Geo:      NewGeoTable(),
	}
}

// Annotate returns the (ASN, country) pair for an address, the annotation
// the paper applies to every scanned IP.
func (d *Directory) Annotate(addr netip.Addr) (ASN, CountryCode) {
	return d.Prefixes.OriginASN(addr), d.Geo.Country(addr)
}

// Summary renders the directory's coverage for diagnostics.
func (d *Directory) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ipmeta: %d prefixes", d.Prefixes.Len())
	return sb.String()
}
