package ipmeta

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestPrefixLongestMatch(t *testing.T) {
	pt := NewPrefixTable()
	pt.MustAnnounce("94.103.0.0/16", 100)
	pt.MustAnnounce("94.103.91.0/24", 48282)
	pt.MustAnnounce("0.0.0.0/0", 1)

	cases := []struct {
		ip   string
		want ASN
	}{
		{"94.103.91.159", 48282}, // most specific /24
		{"94.103.1.1", 100},      // covered by /16 only
		{"8.8.8.8", 1},           // default route
	}
	for _, c := range cases {
		if got := pt.OriginASN(netip.MustParseAddr(c.ip)); got != c.want {
			t.Errorf("OriginASN(%s) = %v, want AS%d", c.ip, got, c.want)
		}
	}
	if pt.Len() != 3 {
		t.Errorf("Len = %d", pt.Len())
	}
}

func TestPrefixNoCoverage(t *testing.T) {
	pt := NewPrefixTable()
	pt.MustAnnounce("10.0.0.0/8", 64512)
	if got := pt.OriginASN(netip.MustParseAddr("11.0.0.1")); got != UnknownASN {
		t.Errorf("uncovered IP mapped to %v", got)
	}
	if got := pt.OriginASN(netip.MustParseAddr("2001:db8::1")); got != UnknownASN {
		t.Errorf("IPv6 mapped to %v", got)
	}
}

func TestPrefixReplacement(t *testing.T) {
	pt := NewPrefixTable()
	pt.MustAnnounce("10.0.0.0/8", 1)
	pt.MustAnnounce("10.0.0.0/8", 2)
	if got := pt.OriginASN(netip.MustParseAddr("10.1.2.3")); got != 2 {
		t.Errorf("re-announcement not applied: %v", got)
	}
	if pt.Len() != 1 {
		t.Errorf("Len after replacement = %d", pt.Len())
	}
}

func TestPrefixRejectsIPv6(t *testing.T) {
	pt := NewPrefixTable()
	if err := pt.Announce(netip.MustParsePrefix("2001:db8::/32"), 5); err == nil {
		t.Fatal("IPv6 prefix accepted")
	}
}

// Property: an address inside an announced /24 always resolves to that
// /24's ASN when it is the most specific announcement.
func TestPrefixMatchProperty(t *testing.T) {
	pt := NewPrefixTable()
	rng := rand.New(rand.NewSource(3))
	type ann struct {
		pfx netip.Prefix
		asn ASN
	}
	var anns []ann
	for i := 0; i < 200; i++ {
		b := [4]byte{byte(rng.Intn(223) + 1), byte(rng.Intn(256)), byte(rng.Intn(256)), 0}
		pfx := netip.PrefixFrom(netip.AddrFrom4(b), 24)
		asn := ASN(rng.Intn(65000) + 1)
		if err := pt.Announce(pfx, asn); err != nil {
			t.Fatal(err)
		}
		anns = append(anns, ann{pfx, asn})
	}
	// Re-announcements of the same /24 overwrite; verify against the final
	// announcement per prefix.
	final := map[netip.Prefix]ASN{}
	for _, a := range anns {
		final[a.pfx] = a.asn
	}
	for pfx, asn := range final {
		b := pfx.Addr().As4()
		b[3] = byte(rng.Intn(256))
		if got := pt.OriginASN(netip.AddrFrom4(b)); got != asn {
			t.Fatalf("OriginASN inside %s = %v, want %v", pfx, got, asn)
		}
	}
}

func TestOrgTable(t *testing.T) {
	ot := NewOrgTable()
	ot.AddOrg(Org{ID: "amazon", Name: "Amazon.com, Inc.", Country: "US"})
	ot.Assign(16509, "AMAZON-02", "amazon")
	ot.Assign(14618, "AMAZON-AES", "amazon")
	ot.Assign(14061, "DIGITALOCEAN", "do")

	if !ot.SameOrg(16509, 14618) {
		t.Error("Amazon siblings not same org")
	}
	if ot.SameOrg(16509, 14061) {
		t.Error("Amazon and DO same org")
	}
	if ot.SameOrg(16509, 99999) || ot.SameOrg(99999, 99999) {
		t.Error("unknown ASN matched an org")
	}
	if got := ot.OrgOf(16509); got != "amazon" {
		t.Errorf("OrgOf = %q", got)
	}
	if got := ot.NameOf(14618); got != "AMAZON-AES" {
		t.Errorf("NameOf = %q", got)
	}
	if got := ot.NameOf(424242); got != "AS424242" {
		t.Errorf("NameOf unknown = %q", got)
	}
	sibs := ot.Siblings(16509)
	if len(sibs) != 2 || sibs[0] != 14618 || sibs[1] != 16509 {
		t.Errorf("Siblings = %v", sibs)
	}
	if ot.Siblings(77777) != nil {
		t.Error("unknown ASN has siblings")
	}
}

func TestGeoTable(t *testing.T) {
	gt := NewGeoTable()
	gt.MustAddPrefix("94.103.0.0/16", "RU")
	gt.MustAddPrefix("92.62.64.0/19", "KG")
	gt.MustAddPrefix("146.185.128.0/17", "NL")

	cases := []struct {
		ip   string
		want CountryCode
	}{
		{"94.103.91.159", "RU"},
		{"92.62.65.10", "KG"},
		{"146.185.143.158", "NL"},
		{"8.8.8.8", UnknownCountry},
	}
	for _, c := range cases {
		if got := gt.Country(netip.MustParseAddr(c.ip)); got != c.want {
			t.Errorf("Country(%s) = %q, want %q", c.ip, got, c.want)
		}
	}
	if got := gt.Country(netip.MustParseAddr("2001:db8::1")); got != UnknownCountry {
		t.Errorf("IPv6 geolocated to %q", got)
	}
}

func TestGeoTableRangesAndErrors(t *testing.T) {
	gt := NewGeoTable()
	if err := gt.AddRange(netip.MustParseAddr("10.0.0.10"), netip.MustParseAddr("10.0.0.5"), "XX"); err == nil {
		t.Error("inverted range accepted")
	}
	if err := gt.AddRange(netip.MustParseAddr("2001:db8::1"), netip.MustParseAddr("2001:db8::2"), "XX"); err == nil {
		t.Error("IPv6 range accepted")
	}
	if err := gt.AddPrefix(netip.MustParsePrefix("2001:db8::/64"), "XX"); err == nil {
		t.Error("IPv6 prefix accepted")
	}
	if err := gt.AddRange(netip.MustParseAddr("10.0.0.0"), netip.MustParseAddr("10.0.1.0"), "AA"); err != nil {
		t.Fatal(err)
	}
	if got := gt.Country(netip.MustParseAddr("10.0.0.128")); got != "AA" {
		t.Errorf("range lookup = %q", got)
	}
	// Half-open: hi itself is outside.
	if got := gt.Country(netip.MustParseAddr("10.0.1.0")); got != UnknownCountry {
		t.Errorf("hi bound included: %q", got)
	}
}

func TestGeoNestedRanges(t *testing.T) {
	gt := NewGeoTable()
	gt.MustAddPrefix("100.0.0.0/8", "US")
	gt.MustAddPrefix("100.50.0.0/16", "DE") // more specific carve-out
	if got := gt.Country(netip.MustParseAddr("100.50.1.1")); got != "DE" {
		t.Errorf("nested lookup = %q", got)
	}
	if got := gt.Country(netip.MustParseAddr("100.51.1.1")); got != "US" {
		t.Errorf("outer lookup = %q", got)
	}
}

func TestGeoTopOfSpace(t *testing.T) {
	gt := NewGeoTable()
	gt.MustAddPrefix("255.255.255.0/24", "ZZ")
	if got := gt.Country(netip.MustParseAddr("255.255.255.1")); got != "ZZ" {
		t.Errorf("top-of-space lookup = %q", got)
	}
}

func TestDirectoryAnnotate(t *testing.T) {
	d := NewDirectory()
	d.Prefixes.MustAnnounce("94.103.88.0/21", 48282)
	d.Geo.MustAddPrefix("94.103.88.0/21", "RU")
	asn, cc := d.Annotate(netip.MustParseAddr("94.103.91.159"))
	if asn != 48282 || cc != "RU" {
		t.Errorf("Annotate = %v, %q", asn, cc)
	}
	if d.Summary() == "" {
		t.Error("empty summary")
	}
}

// Property: geolocation is consistent with the prefix that was inserted —
// any address in a registered /24 maps to its country.
func TestGeoConsistencyProperty(t *testing.T) {
	gt := NewGeoTable()
	codes := []CountryCode{"US", "DE", "NL", "RU", "KG", "AE"}
	f := func(a, b uint8, pick uint8) bool {
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(a%200 + 1), b, 0, 0}), 16)
		cc := codes[int(pick)%len(codes)]
		if err := gt.AddPrefix(pfx, cc); err != nil {
			return false
		}
		got := gt.Country(netip.AddrFrom4([4]byte{byte(a%200 + 1), b, 77, 88}))
		// Another iteration may have inserted the same /16 with a
		// different code; accept any registered code for overlap cases,
		// but the lookup must never be unknown.
		return got != UnknownCountry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestASNString(t *testing.T) {
	if ASN(14061).String() != "AS14061" {
		t.Errorf("ASN.String = %s", ASN(14061))
	}
}
