package dnscore

import (
	"strings"
	"testing"
)

// FuzzParseName drives the name parser with arbitrary byte soup and checks
// its contract: no panic, and every accepted name is canonical — parsing
// is idempotent, the result respects the wire-format length limits, and
// every label survives checkLabel. The seed corpus pins the shapes the LDH
// validation must reject (hyphen edges, misplaced underscores) alongside
// the accepted service-label forms.
func FuzzParseName(f *testing.F) {
	seeds := []string{
		"", ".", "..", "a..b",
		"example.com", "Example.COM.", "mail.mfa.gov.kg",
		"_acme-challenge.mail.gov.kg", "_sip._tcp.example.com", "_dmarc.example.com",
		// Rejected by the LDH rules:
		"-example.com", "example-.com", "www.-mid-.com",
		"foo_bar.com", "example_.com", "__x.com", "_.com", "_-x.com",
		"exa mple.com", "exa$mple.com",
		strings.Repeat("a", 64) + ".com",
		strings.Repeat("abcdefgh.", 32) + "com",
		"xn--bcher-kva.com",
		"\x00.com", "a.\xffb", "🦈.com",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseName(s)
		if err != nil {
			return
		}
		if len(string(n)) > 253 {
			t.Fatalf("ParseName(%q) accepted over-long name %q", s, n)
		}
		again, err := ParseName(string(n))
		if err != nil {
			t.Fatalf("ParseName(%q) = %q, which does not re-parse: %v", s, n, err)
		}
		if again != n {
			t.Fatalf("ParseName not idempotent: %q -> %q -> %q", s, n, again)
		}
		for _, label := range n.Labels() {
			if err := checkLabel(label); err != nil {
				t.Fatalf("ParseName(%q) = %q with invalid label %q: %v", s, n, label, err)
			}
		}
	})
}
