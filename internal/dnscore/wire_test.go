package dnscore

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return &Message{
		ID:               4660,
		Response:         true,
		Authoritative:    true,
		RecursionDesired: true,
		RCode:            RCodeNoError,
		Question:         []Question{{Name: "mail.mfa.gov.kg", Type: TypeA, Class: ClassIN}},
		Answer: RRSet{
			A("mail.mfa.gov.kg", 300, netip.MustParseAddr("94.103.91.159")),
		},
		Authority: RRSet{
			NS("mfa.gov.kg", 3600, "ns1.kg-infocom.ru"),
			NS("mfa.gov.kg", 3600, "ns2.kg-infocom.ru"),
		},
		Additional: RRSet{
			A("ns1.kg-infocom.ru", 3600, netip.MustParseAddr("178.20.41.140")),
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", m, got)
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	m := sampleMessage()
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Repeated names (mfa.gov.kg twice, kg-infocom.ru twice) must compress:
	// the raw presentation text alone exceeds the encoding if pointers work.
	var raw int
	for _, q := range m.Question {
		raw += len(q.Name) + 2
	}
	for _, r := range append(append(m.Answer, m.Authority...), m.Additional...) {
		raw += len(r.Name) + 2 + len(r.Data)
	}
	if len(b) >= raw+12 {
		t.Errorf("no compression benefit: wire=%d raw=%d", len(b), raw)
	}
}

func TestDecodeRejectsShort(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short message accepted")
	}
	m := sampleMessage()
	b, _ := m.Encode()
	for _, cut := range []int{13, len(b) / 2, len(b) - 1} {
		if _, err := Decode(b[:cut]); err == nil {
			t.Errorf("truncated message at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsPointerLoop(t *testing.T) {
	// Craft a message whose question name is a self-pointer.
	b := make([]byte, 16)
	b[5] = 1 // qdcount = 1
	// name at offset 12: pointer to offset 12
	b[12] = 0xC0
	b[13] = 12
	if _, err := Decode(b); err == nil {
		t.Fatal("pointer loop accepted")
	}
}

func TestTXTChunking(t *testing.T) {
	long := strings.Repeat("x", 300)
	m := &Message{
		ID:       1,
		Question: []Question{{Name: "t.example.com", Type: TypeTXT, Class: ClassIN}},
		Answer:   RRSet{TXT("t.example.com", 60, long)},
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answer[0].Data != long {
		t.Fatalf("TXT round trip lost data: %d octets", len(got.Answer[0].Data))
	}
}

func TestEncodeRejectsOversize(t *testing.T) {
	m := &Message{ID: 1}
	for i := 0; i < 60; i++ {
		m.Answer = append(m.Answer, TXT("big.example.com", 60, strings.Repeat("y", 200)))
	}
	if _, err := m.Encode(); err == nil {
		t.Fatal("oversize message accepted")
	}
}

func TestEncodeRejectsBadRData(t *testing.T) {
	bad := []RR{
		{Name: "x.com", Type: TypeA, Class: ClassIN, Data: "not-an-ip"},
		{Name: "x.com", Type: TypeA, Class: ClassIN, Data: "2001:db8::1"}, // v6 in A
		{Name: "x.com", Type: TypeAAAA, Class: ClassIN, Data: "1.2.3.4"},  // v4 in AAAA
		{Name: "x.com", Type: TypeNS, Class: ClassIN, Data: "bad name!"},
	}
	for _, r := range bad {
		m := &Message{ID: 1, Answer: RRSet{r}}
		if _, err := m.Encode(); err == nil {
			t.Errorf("bad rdata accepted: %v", r)
		}
	}
}

// TestOpaqueRDataRoundTrip covers the default rdata path (SOA, DNSKEY,
// RRSIG, DS): the data must survive the wire byte-for-byte. Regression
// test for an encoder that embedded a redundant length prefix.
func TestOpaqueRDataRoundTrip(t *testing.T) {
	key := NewZoneKey("gov.kg", 9)
	records := RRSet{
		SOA("gov.kg", 3600, "ns1.infocom.kg", 7),
		key.DNSKEY(),
		key.DS(),
		key.Sign("gov.kg", TypeNS, RRSet{NS("gov.kg", 300, "ns1.infocom.kg")}),
	}
	m := &Message{ID: 2, Response: true, Answer: records}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range got.Answer {
		if rr.Data != records[i].Data {
			t.Errorf("record %d corrupted:\n in: %q\nout: %q", i, records[i].Data, rr.Data)
		}
	}
	// The signature still verifies after the round trip.
	if !VerifyRRSet("gov.kg", TypeNS, RRSet{NS("gov.kg", 300, "ns1.infocom.kg")}, got.Answer[3], got.Answer[1]) {
		t.Error("RRSIG broken by wire round trip")
	}
}

func TestFlagRoundTrip(t *testing.T) {
	for _, m := range []*Message{
		{ID: 9, Truncated: true, RCode: RCodeNXDomain},
		{ID: 10, RecursionAvailable: true, Opcode: 2},
		{ID: 11, Response: true, Authoritative: true, RCode: RCodeRefused},
	} {
		b, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("flag round trip mismatch: %+v vs %+v", m, got)
		}
	}
}

// randomMessage builds a structurally valid random message for property tests.
func randomMessage(rng *rand.Rand) *Message {
	names := []Name{"example.com", "mail.example.com", "a.b.c.example.com", "gov.kg", "ns1.infocom.kg"}
	pick := func() Name { return names[rng.Intn(len(names))] }
	m := &Message{
		ID:               uint16(rng.Intn(65536)),
		Response:         rng.Intn(2) == 0,
		Authoritative:    rng.Intn(2) == 0,
		RecursionDesired: rng.Intn(2) == 0,
		RCode:            RCode(rng.Intn(6)),
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		m.Question = append(m.Question, Question{Name: pick(), Type: TypeA, Class: ClassIN})
	}
	for i := 0; i < rng.Intn(4); i++ {
		switch rng.Intn(4) {
		case 0:
			m.Answer = append(m.Answer, A(pick(), uint32(rng.Intn(3600)), netip.AddrFrom4([4]byte{byte(rng.Intn(256)), 2, 3, 4})))
		case 1:
			m.Answer = append(m.Answer, NS(pick(), 300, pick()))
		case 2:
			m.Answer = append(m.Answer, CNAME(pick(), 300, pick()))
		case 3:
			m.Answer = append(m.Answer, TXT(pick(), 60, "challenge-token"))
		}
	}
	return m
}

// Property: Encode→Decode is the identity on valid messages.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		m := randomMessage(rng)
		b, err := m.Encode()
		if err != nil {
			t.Fatalf("encode: %v (%+v)", err, m)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Normalize nil-vs-empty Question slices before comparing.
		if len(m.Question) == 0 {
			m.Question = nil
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", m, got)
		}
	}
}

// Property: Decode never panics on arbitrary input.
func TestDecodeNoPanicProperty(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on corrupted valid messages.
func TestDecodeCorruptionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base, err := sampleMessage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		b := bytes.Clone(base)
		for j := 0; j < 1+rng.Intn(4); j++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		_, _ = Decode(b) // must not panic
	}
}

func TestMessageString(t *testing.T) {
	s := sampleMessage().String()
	for _, want := range []string{"response", "mail.mfa.gov.kg", "answer", "authority", "additional"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
