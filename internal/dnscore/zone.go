package dnscore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Zone is a mutable authoritative zone: the set of records at and below an
// apex, plus delegations cut out of it. Zones are safe for concurrent use;
// the simulation mutates them live while resolvers and passive-DNS sensors
// query them.
type Zone struct {
	mu     sync.RWMutex
	apex   Name
	rrs    map[Name]map[Type]RRSet
	serial uint32
}

// NewZone creates an empty zone rooted at apex with an initial SOA.
func NewZone(apex Name) *Zone {
	z := &Zone{apex: apex, rrs: make(map[Name]map[Type]RRSet), serial: 1}
	return z
}

// Apex returns the zone's apex name.
func (z *Zone) Apex() Name { return z.apex }

// Serial returns the zone serial, incremented on every mutation.
func (z *Zone) Serial() uint32 {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.serial
}

// Add inserts a record. Records outside the zone's apex are rejected.
func (z *Zone) Add(r RR) error {
	if !r.Name.IsSubdomainOf(z.apex) {
		return fmt.Errorf("dnscore: %s is outside zone %s", r.Name, z.apex)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	byType := z.rrs[r.Name]
	if byType == nil {
		byType = make(map[Type]RRSet)
		z.rrs[r.Name] = byType
	}
	for _, existing := range byType[r.Type] {
		if existing == r {
			return nil // idempotent
		}
	}
	byType[r.Type] = append(byType[r.Type], r)
	z.serial++
	return nil
}

// MustAdd is Add for static setup; it panics on error.
func (z *Zone) MustAdd(r RR) {
	if err := z.Add(r); err != nil {
		panic(err)
	}
}

// RemoveSet deletes every record of the given type at the given name.
func (z *Zone) RemoveSet(name Name, typ Type) {
	z.mu.Lock()
	defer z.mu.Unlock()
	if byType := z.rrs[name]; byType != nil {
		if _, ok := byType[typ]; ok {
			delete(byType, typ)
			if len(byType) == 0 {
				delete(z.rrs, name)
			}
			z.serial++
		}
	}
}

// Replace atomically swaps the record set of (name, typ) for the given
// records; records must all have matching name and type.
func (z *Zone) Replace(name Name, typ Type, records RRSet) error {
	for _, r := range records {
		if r.Name != name || r.Type != typ {
			return fmt.Errorf("dnscore: replace set mismatch: %s", r)
		}
		if !r.Name.IsSubdomainOf(z.apex) {
			return fmt.Errorf("dnscore: %s is outside zone %s", r.Name, z.apex)
		}
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	byType := z.rrs[name]
	if byType == nil {
		byType = make(map[Type]RRSet)
		z.rrs[name] = byType
	}
	byType[typ] = append(RRSet(nil), records...)
	if len(records) == 0 {
		delete(byType, typ)
		if len(byType) == 0 {
			delete(z.rrs, name)
		}
	}
	z.serial++
	return nil
}

// Lookup returns the records of (name, typ) in the zone, a delegation if one
// cuts above the name, or NXDOMAIN.
//
// The return values mirror the three authoritative outcomes:
//   - answer non-empty: authoritative data.
//   - delegation non-empty: the NS set of the closest enclosing delegation
//     (the caller should follow it).
//   - both empty with exists=true: the name exists but has no records of
//     this type (NODATA).
//   - both empty with exists=false: NXDOMAIN.
func (z *Zone) Lookup(name Name, typ Type) (answer, delegation RRSet, exists bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()

	if !name.IsSubdomainOf(z.apex) {
		return nil, nil, false
	}

	// Walk from the apex down looking for a delegation cut at or above the
	// query name (an NS set at a name below the apex). The zone is not
	// authoritative at or below a cut — every query there is a referral,
	// including queries for the cut name itself, as with a real TLD server.
	if name != z.apex {
		cut := name
		var cuts []Name
		for cut != z.apex && cut != "" {
			cuts = append(cuts, cut)
			cut = cut.Parent()
		}
		// Check top-down so the closest cut to the apex wins.
		for i := len(cuts) - 1; i >= 0; i-- {
			if byType := z.rrs[cuts[i]]; byType != nil {
				if nsSet := byType[TypeNS]; len(nsSet) > 0 {
					return nil, append(RRSet(nil), nsSet...), true
				}
			}
		}
	}

	byType := z.rrs[name]
	if byType == nil {
		// The name may still be an "empty non-terminal" if something
		// exists below it.
		for existing := range z.rrs {
			if existing != name && existing.IsSubdomainOf(name) {
				return nil, nil, true
			}
		}
		return nil, nil, false
	}
	if set := byType[typ]; len(set) > 0 {
		return append(RRSet(nil), set...), nil, true
	}
	// CNAME at the name answers any type (except a query for the CNAME
	// type itself, handled above).
	if set := byType[TypeCNAME]; len(set) > 0 && typ != TypeCNAME {
		return append(RRSet(nil), set...), nil, true
	}
	return nil, nil, true
}

// Glue returns the A records stored at name, ignoring delegation cuts.
// Authoritative servers use this to attach glue for in-zone nameserver
// names that sit below a cut (e.g. ns.tld.kg under the kg delegation in the
// root zone), which Lookup would report as a referral.
func (z *Zone) Glue(name Name) RRSet {
	return z.DirectSet(name, TypeA)
}

// DirectSet returns the records stored at (name, typ) ignoring delegation
// cuts: the raw zone contents rather than the authoritative view. Servers
// use it for glue and for the DS records that live at the parent side of a
// cut; the DNSSEC signer uses it to enumerate RRsets.
func (z *Zone) DirectSet(name Name, typ Type) RRSet {
	z.mu.RLock()
	defer z.mu.RUnlock()
	byType := z.rrs[name]
	if byType == nil {
		return nil
	}
	return append(RRSet(nil), byType[typ]...)
}

// Names returns every owner name in the zone, sorted.
func (z *Zone) Names() []Name {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]Name, 0, len(z.rrs))
	for n := range z.rrs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Records returns a sorted snapshot of every record in the zone.
func (z *Zone) Records() RRSet {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out RRSet
	for _, byType := range z.rrs {
		for _, set := range byType {
			out = append(out, set...)
		}
	}
	out.Sort()
	return out
}

// String renders the zone in zone-file style.
func (z *Zone) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; zone %s serial %d\n", z.apex, z.Serial())
	sb.WriteString(z.Records().String())
	return sb.String()
}
