package dnscore

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// DNSSEC support, structural rather than cryptographically secure (like
// the rest of the simulation's crypto): zone keys are HMAC-SHA256 keys
// whose "public" form is published in DNSKEY records, RRSIGs are MACs over
// a canonical RRset encoding, and DS records carry the SHA-256 digest of
// the child's DNSKEY rdata. The trust model mirrors real DNSSEC exactly:
// a resolver with the root key as trust anchor walks DS → DNSKEY → RRSIG
// down the delegation chain, and a missing DS makes the subtree Insecure
// while a broken signature makes it Bogus.
//
// The paper's relevance (§2.2): DNSSEC does not stop infrastructure
// hijacks because the attacker controls the very registry/registrar state
// that publishes the DS — they simply strip it. That downgrade
// (Secure → Insecure) is itself an observable signal, which §7.1 proposes
// as an extension; internal/core implements it as extra corroboration.

// Additional record types for DNSSEC.
const (
	TypeRRSIG  Type = 46
	TypeDNSKEY Type = 48
)

func init() {
	typeNames[TypeRRSIG] = "RRSIG"
	typeNames[TypeDNSKEY] = "DNSKEY"
	typeNames[TypeDS] = "DS"
}

// ZoneKey is a zone-signing key. The simulation collapses KSK/ZSK into a
// single key per zone.
type ZoneKey struct {
	// Zone is the apex the key signs.
	Zone Name
	// ID is the key tag embedded in RRSIG records.
	ID string
	// Secret is the MAC key; its hex form doubles as the "public key"
	// published in the DNSKEY record (symmetric crypto stands in for
	// asymmetric, as elsewhere in the simulation).
	Secret []byte
}

// NewZoneKey derives a deterministic signing key for a zone.
func NewZoneKey(zone Name, seed int64) *ZoneKey {
	sum := sha256.Sum256([]byte(fmt.Sprintf("zone-key|%s|%d", zone, seed)))
	id := hex.EncodeToString(sum[:4])
	return &ZoneKey{Zone: zone, ID: id, Secret: sum[:]}
}

// DNSKEY returns the zone's public key record.
func (k *ZoneKey) DNSKEY() RR {
	return RR{Name: k.Zone, Type: TypeDNSKEY, Class: ClassIN, TTL: 3600,
		Data: k.ID + " " + hex.EncodeToString(k.Secret)}
}

// parseDNSKEY extracts the key tag and secret from DNSKEY rdata.
func parseDNSKEY(data string) (id string, secret []byte, err error) {
	parts := strings.Fields(data)
	if len(parts) != 2 {
		return "", nil, fmt.Errorf("dnscore: malformed DNSKEY %q", data)
	}
	secret, err = hex.DecodeString(parts[1])
	if err != nil {
		return "", nil, fmt.Errorf("dnscore: malformed DNSKEY key material: %w", err)
	}
	return parts[0], secret, nil
}

// DS returns the delegation-signer record the parent publishes for this
// key: the digest of the DNSKEY rdata.
func (k *ZoneKey) DS() RR {
	sum := sha256.Sum256([]byte(k.DNSKEY().Data))
	return RR{Name: k.Zone, Type: TypeDS, Class: ClassIN, TTL: 3600,
		Data: k.ID + " " + hex.EncodeToString(sum[:16])}
}

// DSMatchesKey reports whether a DS record's digest commits to the DNSKEY
// rdata.
func DSMatchesKey(ds RR, dnskey RR) bool {
	parts := strings.Fields(ds.Data)
	if len(parts) != 2 || ds.Type != TypeDS || dnskey.Type != TypeDNSKEY {
		return false
	}
	sum := sha256.Sum256([]byte(dnskey.Data))
	return parts[1] == hex.EncodeToString(sum[:16])
}

// canonicalRRSet is the byte string a signature covers: name, type, and
// the sorted record data.
func canonicalRRSet(name Name, typ Type, rrs RRSet) []byte {
	datas := make([]string, 0, len(rrs))
	for _, r := range rrs {
		if r.Name == name && r.Type == typ {
			datas = append(datas, r.Data)
		}
	}
	sort.Strings(datas)
	return []byte(fmt.Sprintf("%s|%d|%s", name, typ, strings.Join(datas, "\x00")))
}

// Sign produces the RRSIG record covering the (name, typ) set in rrs.
func (k *ZoneKey) Sign(name Name, typ Type, rrs RRSet) RR {
	mac := hmac.New(sha256.New, k.Secret)
	mac.Write(canonicalRRSet(name, typ, rrs))
	return RR{Name: name, Type: TypeRRSIG, Class: ClassIN, TTL: 3600,
		Data: fmt.Sprintf("%d %s %s", uint16(typ), k.ID, hex.EncodeToString(mac.Sum(nil)))}
}

// RRSIGCovers parses an RRSIG's covered type and key tag.
func RRSIGCovers(sig RR) (Type, string, bool) {
	parts := strings.Fields(sig.Data)
	if sig.Type != TypeRRSIG || len(parts) != 3 {
		return 0, "", false
	}
	var t uint16
	if _, err := fmt.Sscanf(parts[0], "%d", &t); err != nil {
		return 0, "", false
	}
	return Type(t), parts[1], true
}

// VerifyRRSet checks an RRSIG over the (name, typ) records in rrs using
// key material from a DNSKEY record.
func VerifyRRSet(name Name, typ Type, rrs RRSet, sig RR, dnskey RR) bool {
	covered, keyTag, ok := RRSIGCovers(sig)
	if !ok || covered != typ || sig.Name != name {
		return false
	}
	id, secret, err := parseDNSKEY(dnskey.Data)
	if err != nil || id != keyTag {
		return false
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(canonicalRRSet(name, typ, rrs))
	parts := strings.Fields(sig.Data)
	want, err := hex.DecodeString(parts[2])
	if err != nil {
		return false
	}
	return hmac.Equal(mac.Sum(nil), want)
}

// SignZone signs every RRset in the zone with the key and publishes the
// DNSKEY at the apex: after this, lookups for any (name, type) can be
// accompanied by a verifying RRSIG. Existing signatures are replaced;
// callers re-sign after mutating a signed zone.
func SignZone(z *Zone, key *ZoneKey) error {
	if z.Apex() != key.Zone {
		return fmt.Errorf("dnscore: key for %s cannot sign zone %s", key.Zone, z.Apex())
	}
	// Clear previous signatures and key, then re-add.
	for _, name := range z.Names() {
		z.RemoveSet(name, TypeRRSIG)
	}
	z.RemoveSet(key.Zone, TypeDNSKEY)
	if err := z.Add(key.DNSKEY()); err != nil {
		return err
	}
	type setKey struct {
		name Name
		typ  Type
	}
	sets := map[setKey]RRSet{}
	for _, r := range z.Records() {
		if r.Type == TypeRRSIG {
			continue
		}
		k := setKey{r.Name, r.Type}
		sets[k] = append(sets[k], r)
	}
	for k, set := range sets {
		if err := z.Add(key.Sign(k.name, k.typ, set)); err != nil {
			return err
		}
	}
	return nil
}

// SecurityStatus is the DNSSEC validation outcome of a resolution.
type SecurityStatus int

// Validation outcomes, mirroring RFC 4033 terminology.
const (
	// StatusInsecure: some delegation on the path published no DS, so the
	// answer is unsigned but legitimately so.
	StatusInsecure SecurityStatus = iota
	// StatusSecure: an unbroken DS→DNSKEY→RRSIG chain from the trust
	// anchor validated the answer.
	StatusSecure
	// StatusBogus: the chain promised a signature that failed — missing
	// or wrong RRSIG under a published DS.
	StatusBogus
)

// String names the status.
func (s SecurityStatus) String() string {
	switch s {
	case StatusSecure:
		return "secure"
	case StatusBogus:
		return "bogus"
	default:
		return "insecure"
	}
}
