// Package dnscore implements the DNS data model used by the simulation:
// domain names, resource records, zones, and the RFC 1035 wire format. It is
// deliberately self-contained (stdlib only) and implements just enough of
// the protocol for authoritative service, recursive resolution, passive DNS
// observation, and CA domain validation — the operations the paper's attack
// and detection models depend on.
package dnscore

import (
	"errors"
	"fmt"
	"strings"
)

// Name is a fully-qualified domain name in canonical (lower-case, no
// trailing dot) presentation form. The root zone is the empty Name.
type Name string

// Errors returned by name parsing.
var (
	ErrNameTooLong   = errors.New("dnscore: name exceeds 253 octets")
	ErrLabelTooLong  = errors.New("dnscore: label exceeds 63 octets")
	ErrEmptyLabel    = errors.New("dnscore: empty label")
	ErrBadLabel      = errors.New("dnscore: label contains invalid character")
	ErrLabelEdgeDash = errors.New("dnscore: label begins or ends with a hyphen")
)

// ParseName canonicalizes and validates a domain name. It accepts an
// optional trailing dot and upper-case letters; it rejects empty labels,
// over-long names and labels, and anything outside LDH (letter-digit-hyphen
// with no leading or trailing hyphen). The one exception to strict LDH is
// the service-label convention: a label may start with a single underscore
// (as in _acme-challenge or _dmarc); underscores anywhere else are
// rejected.
func ParseName(s string) (Name, error) {
	s = strings.TrimSuffix(strings.ToLower(s), ".")
	if s == "" {
		return "", nil // the root
	}
	if len(s) > 253 {
		return "", fmt.Errorf("%w: %q", ErrNameTooLong, s)
	}
	for _, label := range strings.Split(s, ".") {
		if err := checkLabel(label); err != nil {
			return "", fmt.Errorf("%w in %q", err, s)
		}
	}
	return Name(s), nil
}

// MustParseName is ParseName for static tables and tests; it panics on error.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

func checkLabel(label string) error {
	if label == "" {
		return ErrEmptyLabel
	}
	if len(label) > 63 {
		return ErrLabelTooLong
	}
	// Service labels (_acme-challenge, _dmarc, _tcp) carry one leading
	// underscore; the remainder must still be a valid LDH label.
	body := label
	if body[0] == '_' {
		body = body[1:]
		if body == "" {
			return ErrBadLabel
		}
	}
	if body[0] == '-' || body[len(body)-1] == '-' {
		return ErrLabelEdgeDash
	}
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-':
		default:
			return ErrBadLabel
		}
	}
	return nil
}

// String returns the presentation form; the root prints as ".".
func (n Name) String() string {
	if n == "" {
		return "."
	}
	return string(n)
}

// Labels splits the name into labels, least significant first is NOT used;
// labels are returned in presentation order (www, example, com). The root
// returns nil.
func (n Name) Labels() []string {
	if n == "" {
		return nil
	}
	return strings.Split(string(n), ".")
}

// NumLabels returns the number of labels in the name.
func (n Name) NumLabels() int {
	if n == "" {
		return 0
	}
	return strings.Count(string(n), ".") + 1
}

// Parent returns the name with its leftmost label removed; the parent of a
// TLD is the root and the parent of the root is the root.
func (n Name) Parent() Name {
	if n == "" {
		return ""
	}
	if i := strings.IndexByte(string(n), '.'); i >= 0 {
		return n[i+1:]
	}
	return ""
}

// IsSubdomainOf reports whether n is equal to or underneath ancestor.
// Every name is a subdomain of the root.
func (n Name) IsSubdomainOf(ancestor Name) bool {
	if ancestor == "" {
		return true
	}
	if n == ancestor {
		return true
	}
	return strings.HasSuffix(string(n), "."+string(ancestor))
}

// Child prepends a label to the name: Name("example.com").Child("mail") is
// "mail.example.com".
func (n Name) Child(label string) Name {
	if n == "" {
		return Name(label)
	}
	return Name(label + "." + string(n))
}

// FirstLabel returns the leftmost label, or "" for the root.
func (n Name) FirstLabel() string {
	if n == "" {
		return ""
	}
	if i := strings.IndexByte(string(n), '.'); i >= 0 {
		return string(n)[:i]
	}
	return string(n)
}

// multiLabelSuffixes lists public-suffix-style two-label suffixes that occur
// in the paper's victim tables (gov.kg, com.cy, gov.ae, ...). The simulation
// registers whichever suffixes its world uses; this seed set covers the
// paper's campaigns out of the box.
var multiLabelSuffixes = map[Name]bool{
	"gov.ae": true, "gov.al": true, "gov.cy": true, "com.cy": true,
	"gov.eg": true, "gov.iq": true, "gov.jo": true, "gov.kg": true,
	"gov.kw": true, "com.kw": true, "gov.lb": true, "com.lb": true,
	"gov.lv": true, "gov.lt": true, "gov.ma": true, "gov.mm": true,
	"gov.pl": true, "gov.tm": true, "gov.vn": true, "gov.kz": true,
	"gov.gh": true,
}

// RegisterPublicSuffix adds a multi-label public suffix so that
// RegisteredDomain treats names directly under it as registrable.
func RegisterPublicSuffix(suffix Name) { multiLabelSuffixes[suffix] = true }

// RegisteredDomain returns the registrable domain for a name: one label
// under its public suffix (com, org, a ccTLD, or a registered multi-label
// suffix such as gov.kg). Names that are themselves suffixes or the root
// return "".
//
// This is a deliberately small stand-in for the Public Suffix List: the
// simulation controls its own namespace, so only suffixes registered via
// RegisterPublicSuffix (plus all single-label TLDs) exist.
func (n Name) RegisteredDomain() Name {
	if multiLabelSuffixes[n] {
		return ""
	}
	// Allocation-free: every candidate suffix and the result are
	// substrings of n, so the hot loops that call this per SAN (dataset
	// ingest, shortlisting, pivoting) never touch the heap.
	s := string(n)
	last := strings.LastIndexByte(s, '.')
	if last < 0 {
		return "" // fewer than two labels
	}
	prev := -1 // dot preceding the suffix under test
	for d := strings.IndexByte(s, '.'); d != last; {
		// The suffix after d has at least two labels; longest first, so
		// the first registered match wins.
		if multiLabelSuffixes[n[d+1:]] {
			return n[prev+1:]
		}
		prev = d
		d = prev + 1 + strings.IndexByte(s[prev+1:], '.')
	}
	// Single-label TLD: registrable domain is the last two labels.
	return n[prev+1:]
}

// TLD returns the rightmost label, or "" for the root.
func (n Name) TLD() Name {
	if n == "" {
		return ""
	}
	if i := strings.LastIndexByte(string(n), '.'); i >= 0 {
		return n[i+1:]
	}
	return n
}
