package dnscore

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
)

func govKGZone() *Zone {
	z := NewZone("gov.kg")
	z.MustAdd(SOA("gov.kg", 3600, "ns1.infocom.kg", 1))
	z.MustAdd(NS("gov.kg", 3600, "ns1.infocom.kg"))
	z.MustAdd(NS("mfa.gov.kg", 3600, "ns1.infocom.kg"))
	z.MustAdd(NS("mfa.gov.kg", 3600, "ns2.infocom.kg"))
	z.MustAdd(A("www.gov.kg", 300, netip.MustParseAddr("92.62.65.10")))
	return z
}

func TestZoneAddLookup(t *testing.T) {
	z := govKGZone()
	ans, del, exists := z.Lookup("www.gov.kg", TypeA)
	if len(ans) != 1 || del != nil || !exists {
		t.Fatalf("www lookup: ans=%v del=%v exists=%v", ans, del, exists)
	}
	if ans[0].Addr() != netip.MustParseAddr("92.62.65.10") {
		t.Fatalf("wrong address: %v", ans[0])
	}
}

func TestZoneDelegation(t *testing.T) {
	z := govKGZone()
	// A query below the mfa.gov.kg cut should return the delegation.
	ans, del, exists := z.Lookup("mail.mfa.gov.kg", TypeA)
	if ans != nil || len(del) != 2 || !exists {
		t.Fatalf("delegation lookup: ans=%v del=%v exists=%v", ans, del, exists)
	}
	for _, ns := range del {
		if ns.Type != TypeNS || ns.Name != "mfa.gov.kg" {
			t.Errorf("unexpected delegation record %v", ns)
		}
	}
	// A query for the delegation name itself is also a referral: the
	// parent is not authoritative at or below the cut.
	ans, del, _ = z.Lookup("mfa.gov.kg", TypeNS)
	if ans != nil || len(del) != 2 {
		t.Fatalf("NS self lookup: ans=%v del=%v", ans, del)
	}
}

func TestZoneNXDomainAndNoData(t *testing.T) {
	z := govKGZone()
	ans, del, exists := z.Lookup("absent.gov.kg", TypeA)
	if ans != nil || del != nil || exists {
		t.Fatalf("NXDOMAIN lookup: ans=%v del=%v exists=%v", ans, del, exists)
	}
	// www.gov.kg exists, but has no TXT: NODATA.
	ans, del, exists = z.Lookup("www.gov.kg", TypeTXT)
	if ans != nil || del != nil || !exists {
		t.Fatalf("NODATA lookup: ans=%v del=%v exists=%v", ans, del, exists)
	}
	// Empty non-terminal: nothing at mfa.gov.kg's parent chain name.
	z.MustAdd(A("a.b.gov.kg", 60, netip.MustParseAddr("10.0.0.1")))
	_, _, exists = z.Lookup("b.gov.kg", TypeA)
	if !exists {
		t.Fatal("empty non-terminal reported NXDOMAIN")
	}
}

func TestZoneOutOfBailiwick(t *testing.T) {
	z := govKGZone()
	if err := z.Add(A("example.com", 60, netip.MustParseAddr("1.2.3.4"))); err == nil {
		t.Fatal("out-of-zone add accepted")
	}
	ans, del, exists := z.Lookup("example.com", TypeA)
	if ans != nil || del != nil || exists {
		t.Fatal("out-of-zone lookup found something")
	}
}

func TestZoneCNAMEAnswersOtherTypes(t *testing.T) {
	z := govKGZone()
	z.MustAdd(CNAME("portal.gov.kg", 300, "www.gov.kg"))
	ans, _, exists := z.Lookup("portal.gov.kg", TypeA)
	if !exists || len(ans) != 1 || ans[0].Type != TypeCNAME {
		t.Fatalf("CNAME lookup: %v", ans)
	}
}

func TestZoneReplaceAndRemove(t *testing.T) {
	z := govKGZone()
	before := z.Serial()

	hijacked := RRSet{
		NS("mfa.gov.kg", 3600, "ns1.kg-infocom.ru"),
		NS("mfa.gov.kg", 3600, "ns2.kg-infocom.ru"),
	}
	if err := z.Replace("mfa.gov.kg", TypeNS, hijacked); err != nil {
		t.Fatal(err)
	}
	if z.Serial() <= before {
		t.Error("serial did not advance")
	}
	_, del, _ := z.Lookup("mfa.gov.kg", TypeNS)
	if len(del) != 2 || (del[0].Target() != "ns1.kg-infocom.ru" && del[1].Target() != "ns1.kg-infocom.ru") {
		t.Fatalf("replace did not take effect: %v", del)
	}

	z.RemoveSet("mfa.gov.kg", TypeNS)
	ans, del, _ := z.Lookup("mfa.gov.kg", TypeNS)
	if ans != nil || del != nil {
		t.Fatalf("remove left records: ans=%v del=%v", ans, del)
	}

	// Replace with mismatched name must fail.
	if err := z.Replace("mfa.gov.kg", TypeNS, RRSet{NS("other.gov.kg", 60, "x.y")}); err == nil {
		t.Fatal("mismatched replace accepted")
	}
	// Replace with empty set clears.
	z.MustAdd(A("tmp.gov.kg", 60, netip.MustParseAddr("10.1.1.1")))
	if err := z.Replace("tmp.gov.kg", TypeA, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, exists := z.Lookup("tmp.gov.kg", TypeA); exists {
		t.Fatal("empty replace did not delete name")
	}
}

func TestZoneAddIdempotent(t *testing.T) {
	z := NewZone("example.com")
	r := A("www.example.com", 60, netip.MustParseAddr("1.2.3.4"))
	z.MustAdd(r)
	s1 := z.Serial()
	z.MustAdd(r)
	if z.Serial() != s1 {
		t.Error("duplicate add advanced serial")
	}
	ans, _, _ := z.Lookup("www.example.com", TypeA)
	if len(ans) != 1 {
		t.Fatalf("duplicate add produced %d records", len(ans))
	}
}

func TestZoneConcurrentAccess(t *testing.T) {
	z := govKGZone()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				name := MustParseName(fmt.Sprintf("h%d-%d.gov.kg", i, j))
				z.MustAdd(A(name, 60, netip.AddrFrom4([4]byte{10, 0, byte(i), byte(j)})))
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				z.Lookup("www.gov.kg", TypeA)
				z.Records()
			}
		}()
	}
	wg.Wait()
	if got := len(z.Names()); got < 800 {
		t.Errorf("expected ≥800 names after concurrent adds, got %d", got)
	}
}

func TestZoneString(t *testing.T) {
	s := govKGZone().String()
	for _, want := range []string{"zone gov.kg", "www.gov.kg", "92.62.65.10"} {
		if !strings.Contains(s, want) {
			t.Errorf("zone String missing %q", want)
		}
	}
}

func TestRRAccessors(t *testing.T) {
	a := A("x.com", 60, netip.MustParseAddr("1.2.3.4"))
	if a.Addr() != netip.MustParseAddr("1.2.3.4") {
		t.Error("Addr failed")
	}
	if a.Target() != "" {
		t.Error("A record has a Target")
	}
	ns := NS("x.com", 60, "ns.x.com")
	if ns.Target() != "ns.x.com" {
		t.Error("Target failed")
	}
	if ns.Addr().IsValid() {
		t.Error("NS record has an Addr")
	}
	bad := RR{Name: "x.com", Type: TypeA, Data: "junk"}
	if bad.Addr().IsValid() {
		t.Error("junk A data produced a valid Addr")
	}
	if (RR{Name: "x.com", Type: TypeNS, Data: "bad name!"}).Target() != "" {
		t.Error("junk NS data produced a Target")
	}
}

func TestTypeAndRCodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeNS.String() != "NS" {
		t.Error("known type names wrong")
	}
	if Type(999).String() != "TYPE999" {
		t.Error("unknown type name wrong")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" {
		t.Error("known rcode name wrong")
	}
	if RCode(15).String() != "RCODE15" {
		t.Error("unknown rcode name wrong")
	}
}

func TestRRSetFilterSort(t *testing.T) {
	s := RRSet{
		NS("b.com", 60, "ns2.b.com"),
		A("a.com", 60, netip.MustParseAddr("1.1.1.1")),
		NS("b.com", 60, "ns1.b.com"),
	}
	s.Sort()
	if s[0].Name != "a.com" || s[1].Data != "ns1.b.com" {
		t.Errorf("sort order wrong: %v", s)
	}
	if got := s.Filter("b.com", TypeNS); len(got) != 2 {
		t.Errorf("filter found %d", len(got))
	}
	if got := s.Filter("b.com", 0); len(got) != 2 {
		t.Errorf("wildcard filter found %d", len(got))
	}
}
