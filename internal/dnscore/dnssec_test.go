package dnscore

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestZoneKeyDeterminism(t *testing.T) {
	a := NewZoneKey("gov.kg", 7)
	b := NewZoneKey("gov.kg", 7)
	c := NewZoneKey("gov.kg", 8)
	if a.ID != b.ID || string(a.Secret) != string(b.Secret) {
		t.Fatal("same seed produced different keys")
	}
	if a.ID == c.ID {
		t.Fatal("different seeds produced the same key tag")
	}
}

func TestSignVerifyRRSet(t *testing.T) {
	key := NewZoneKey("mfa.gov.kg", 1)
	set := RRSet{
		A("mail.mfa.gov.kg", 300, netip.MustParseAddr("92.62.65.20")),
		A("mail.mfa.gov.kg", 300, netip.MustParseAddr("92.62.65.21")),
	}
	sig := key.Sign("mail.mfa.gov.kg", TypeA, set)
	if !VerifyRRSet("mail.mfa.gov.kg", TypeA, set, sig, key.DNSKEY()) {
		t.Fatal("valid signature rejected")
	}
	// Record order must not matter.
	reversed := RRSet{set[1], set[0]}
	if !VerifyRRSet("mail.mfa.gov.kg", TypeA, reversed, sig, key.DNSKEY()) {
		t.Fatal("order-sensitive verification")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	key := NewZoneKey("mfa.gov.kg", 1)
	set := RRSet{A("mail.mfa.gov.kg", 300, netip.MustParseAddr("92.62.65.20"))}
	sig := key.Sign("mail.mfa.gov.kg", TypeA, set)

	// Swapped record data (the hijack: same name, attacker IP).
	forged := RRSet{A("mail.mfa.gov.kg", 300, netip.MustParseAddr("94.103.91.159"))}
	if VerifyRRSet("mail.mfa.gov.kg", TypeA, forged, sig, key.DNSKEY()) {
		t.Fatal("forged rdata verified")
	}
	// Wrong key.
	other := NewZoneKey("mfa.gov.kg", 99)
	if VerifyRRSet("mail.mfa.gov.kg", TypeA, set, sig, other.DNSKEY()) {
		t.Fatal("wrong key verified")
	}
	// Signature covering a different type.
	nsSig := key.Sign("mfa.gov.kg", TypeNS, RRSet{NS("mfa.gov.kg", 300, "ns1.infocom.kg")})
	if VerifyRRSet("mail.mfa.gov.kg", TypeA, set, nsSig, key.DNSKEY()) {
		t.Fatal("cross-type signature verified")
	}
	// Malformed artifacts never verify (or panic).
	if VerifyRRSet("mail.mfa.gov.kg", TypeA, set, RR{Type: TypeRRSIG, Name: "mail.mfa.gov.kg", Data: "garbage"}, key.DNSKEY()) {
		t.Fatal("garbage RRSIG verified")
	}
	if VerifyRRSet("mail.mfa.gov.kg", TypeA, set, sig, RR{Type: TypeDNSKEY, Data: "nothex"}) {
		t.Fatal("garbage DNSKEY verified")
	}
}

func TestDSMatchesKey(t *testing.T) {
	key := NewZoneKey("gov.kg", 1)
	if !DSMatchesKey(key.DS(), key.DNSKEY()) {
		t.Fatal("own DS rejected")
	}
	other := NewZoneKey("gov.kg", 2)
	if DSMatchesKey(key.DS(), other.DNSKEY()) {
		t.Fatal("foreign DNSKEY matched")
	}
	if DSMatchesKey(RR{Type: TypeDS, Data: "junk"}, key.DNSKEY()) {
		t.Fatal("malformed DS matched")
	}
}

func TestSignZone(t *testing.T) {
	z := NewZone("mfa.gov.kg")
	z.MustAdd(A("mail.mfa.gov.kg", 300, netip.MustParseAddr("92.62.65.20")))
	z.MustAdd(NS("mfa.gov.kg", 3600, "ns1.infocom.kg"))
	key := NewZoneKey("mfa.gov.kg", 3)
	if err := SignZone(z, key); err != nil {
		t.Fatal(err)
	}
	// Every RRset has a covering signature.
	sigs := z.DirectSet("mail.mfa.gov.kg", TypeRRSIG)
	if len(sigs) != 1 {
		t.Fatalf("mail RRSIGs = %d", len(sigs))
	}
	set := z.DirectSet("mail.mfa.gov.kg", TypeA)
	if !VerifyRRSet("mail.mfa.gov.kg", TypeA, set, sigs[0], key.DNSKEY()) {
		t.Fatal("zone signature invalid")
	}
	// The DNSKEY is published and self-signed.
	if len(z.DirectSet("mfa.gov.kg", TypeDNSKEY)) != 1 {
		t.Fatal("DNSKEY not published")
	}
	keySigs := z.DirectSet("mfa.gov.kg", TypeRRSIG)
	foundKeySig := false
	for _, s := range keySigs {
		if covered, _, _ := RRSIGCovers(s); covered == TypeDNSKEY {
			foundKeySig = true
		}
	}
	if !foundKeySig {
		t.Fatal("DNSKEY not self-signed")
	}

	// Re-signing after mutation replaces stale signatures.
	z.MustAdd(A("vpn.mfa.gov.kg", 300, netip.MustParseAddr("92.62.65.30")))
	if err := SignZone(z, key); err != nil {
		t.Fatal(err)
	}
	if len(z.DirectSet("vpn.mfa.gov.kg", TypeRRSIG)) != 1 {
		t.Fatal("new record not signed on re-sign")
	}
	if got := len(z.DirectSet("mail.mfa.gov.kg", TypeRRSIG)); got != 1 {
		t.Fatalf("stale signatures accumulated: %d", got)
	}

	// Signing with a foreign key is rejected.
	if err := SignZone(z, NewZoneKey("other.example", 1)); err == nil {
		t.Fatal("foreign key accepted")
	}
}

func TestRRSIGCoversParsing(t *testing.T) {
	key := NewZoneKey("x.com", 1)
	sig := key.Sign("a.x.com", TypeTXT, RRSet{TXT("a.x.com", 60, "hello")})
	covered, tag, ok := RRSIGCovers(sig)
	if !ok || covered != TypeTXT || tag != key.ID {
		t.Fatalf("RRSIGCovers = %v %q %v", covered, tag, ok)
	}
	if _, _, ok := RRSIGCovers(RR{Type: TypeRRSIG, Data: "x y"}); ok {
		t.Fatal("short RRSIG parsed")
	}
	if _, _, ok := RRSIGCovers(RR{Type: TypeA, Data: "1 a b"}); ok {
		t.Fatal("non-RRSIG parsed")
	}
	if _, _, ok := RRSIGCovers(RR{Type: TypeRRSIG, Data: "NaN a b"}); ok {
		t.Fatal("non-numeric covered type parsed")
	}
}

func TestSecurityStatusString(t *testing.T) {
	if StatusSecure.String() != "secure" || StatusInsecure.String() != "insecure" || StatusBogus.String() != "bogus" {
		t.Fatal("status names wrong")
	}
}

// Property: any single-byte corruption of the signature hex breaks
// verification.
func TestSignatureFragilityProperty(t *testing.T) {
	key := NewZoneKey("p.example", 5)
	set := RRSet{A("h.p.example", 60, netip.MustParseAddr("10.0.0.1"))}
	sig := key.Sign("h.p.example", TypeA, set)
	f := func(pos uint8, alt uint8) bool {
		fields := strings.Fields(sig.Data)
		mac := []byte(fields[2])
		i := int(pos) % len(mac)
		replacement := "0123456789abcdef"[alt%16]
		if mac[i] == replacement {
			return true // no-op corruption
		}
		mac[i] = replacement
		corrupted := sig
		corrupted.Data = fields[0] + " " + fields[1] + " " + string(mac)
		return !VerifyRRSet("h.p.example", TypeA, set, corrupted, key.DNSKEY())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
