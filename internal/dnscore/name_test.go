package dnscore

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseName(t *testing.T) {
	cases := []struct {
		in   string
		want Name
		err  bool
	}{
		{"example.com", "example.com", false},
		{"Example.COM.", "example.com", false},
		{"mail.mfa.gov.kg", "mail.mfa.gov.kg", false},
		{"_acme-challenge.mail.gov.kg", "_acme-challenge.mail.gov.kg", false},
		{".", "", false},
		{"", "", false},
		{"a..b", "", true},
		{"exa mple.com", "", true},
		{"exa$mple.com", "", true},
		{strings.Repeat("a", 64) + ".com", "", true},
		{strings.Repeat("abcdefgh.", 32) + "com", "", true}, // > 253 octets
		// LDH edges: labels may not begin or end with a hyphen.
		{"-example.com", "", true},
		{"example-.com", "", true},
		{"www.-mid-.com", "", true},
		{"xn--bcher-kva.com", "xn--bcher-kva.com", false}, // interior hyphens fine
		// Underscore only as the service-label prefix.
		{"_dmarc.example.com", "_dmarc.example.com", false},
		{"_sip._tcp.example.com", "_sip._tcp.example.com", false},
		{"foo_bar.com", "", true},
		{"example_.com", "", true},
		{"__x.com", "", true},
		{"_.com", "", true},
		{"_-x.com", "", true},
	}
	for _, c := range cases {
		got, err := ParseName(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseName(%q) err=%v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMustParseNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParseName("bad name")
}

func TestNameStructure(t *testing.T) {
	n := MustParseName("mail.mfa.gov.kg")
	if n.NumLabels() != 4 {
		t.Errorf("NumLabels = %d", n.NumLabels())
	}
	if got := n.Parent(); got != "mfa.gov.kg" {
		t.Errorf("Parent = %q", got)
	}
	if got := n.FirstLabel(); got != "mail" {
		t.Errorf("FirstLabel = %q", got)
	}
	if got := n.TLD(); got != "kg" {
		t.Errorf("TLD = %q", got)
	}
	if !n.IsSubdomainOf("gov.kg") || !n.IsSubdomainOf(n) || !n.IsSubdomainOf("") {
		t.Error("IsSubdomainOf failures")
	}
	if n.IsSubdomainOf("ov.kg") {
		t.Error("suffix-but-not-label match accepted")
	}
	if got := Name("gov.kg").Child("mfa"); got != "mfa.gov.kg" {
		t.Errorf("Child = %q", got)
	}
	if got := Name("").Child("com"); got != "com" {
		t.Errorf("root Child = %q", got)
	}
}

func TestRootName(t *testing.T) {
	root := Name("")
	if root.String() != "." {
		t.Errorf("root String = %q", root.String())
	}
	if root.Parent() != "" || root.NumLabels() != 0 || root.FirstLabel() != "" || root.TLD() != "" {
		t.Error("root structure accessors wrong")
	}
	if root.Labels() != nil {
		t.Error("root has labels")
	}
}

func TestRegisteredDomain(t *testing.T) {
	cases := []struct {
		in, want Name
	}{
		{"mail.mfa.gov.kg", "mfa.gov.kg"},
		{"mfa.gov.kg", "mfa.gov.kg"},
		{"gov.kg", ""},
		{"kg", ""},
		{"", ""},
		{"www.example.com", "example.com"},
		{"example.com", "example.com"},
		{"deep.sub.domain.example.com", "example.com"},
		{"mbox.cyta.com.cy", "cyta.com.cy"},
	}
	for _, c := range cases {
		if got := c.in.RegisteredDomain(); got != c.want {
			t.Errorf("RegisteredDomain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRegisterPublicSuffix(t *testing.T) {
	RegisterPublicSuffix("co.test")
	if got := Name("www.site.co.test").RegisteredDomain(); got != "site.co.test" {
		t.Errorf("after registration, RegisteredDomain = %q", got)
	}
}

// Property: parsing is idempotent — reparsing a parsed name yields itself.
func TestParseIdempotentProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		labels := []string{"mail", "vpn", "owa", "example", "gov", "kg", "com"}
		n := Name(labels[int(a)%len(labels)] + "." + labels[int(b)%len(labels)])
		got, err := ParseName(string(n))
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a child is always a subdomain of its parent chain.
func TestChildSubdomainProperty(t *testing.T) {
	f := func(depth uint8) bool {
		n := Name("com")
		for i := 0; i < int(depth%8); i++ {
			n = n.Child("x")
		}
		for p := n; p != ""; p = p.Parent() {
			if !n.IsSubdomainOf(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
