package dnscore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Message is a DNS query or response, RFC 1035 §4.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode

	Question   []Question
	Answer     RRSet
	Authority  RRSet
	Additional RRSet
}

// Question is a DNS question section entry.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String renders the question in dig style.
func (q Question) String() string {
	return fmt.Sprintf("%s IN %s", q.Name, q.Type)
}

// Wire-format limits.
const (
	// MaxUDPPayload is the classic 512-octet UDP message ceiling. The
	// simulation keeps messages small, but encoding enforces it so that
	// truncation behaves realistically.
	MaxUDPPayload = 512
	maxPointers   = 64 // compression-pointer chase limit during decoding
)

// Decoding errors.
var (
	ErrShortMessage   = errors.New("dnscore: message too short")
	ErrPointerLoop    = errors.New("dnscore: compression pointer loop")
	ErrTrailingData   = errors.New("dnscore: malformed record data")
	ErrMessageTooLong = errors.New("dnscore: message exceeds UDP payload limit")
)

type encoder struct {
	buf     []byte
	offsets map[string]int // name → offset for compression
}

// EncodeTCP serializes the message without the UDP payload ceiling, for
// transports with their own framing (RFC 1035 §4.2.2 length-prefixed TCP).
func (m *Message) EncodeTCP() ([]byte, error) {
	b, err := m.encode()
	if err != nil {
		return nil, err
	}
	if len(b) > 0xFFFF {
		return nil, fmt.Errorf("%w: %d octets exceed TCP framing", ErrMessageTooLong, len(b))
	}
	return b, nil
}

// Encode serializes the message to wire format with name compression.
// Messages longer than MaxUDPPayload return ErrMessageTooLong; callers that
// serve UDP should set Truncated and retry with fewer records.
func (m *Message) Encode() ([]byte, error) {
	b, err := m.encode()
	if err != nil {
		return nil, err
	}
	if len(b) > MaxUDPPayload {
		return nil, fmt.Errorf("%w: %d octets", ErrMessageTooLong, len(b))
	}
	return b, nil
}

func (m *Message) encode() ([]byte, error) {
	e := &encoder{offsets: make(map[string]int)}
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode & 0xF)

	e.u16(m.ID)
	e.u16(flags)
	e.u16(uint16(len(m.Question)))
	e.u16(uint16(len(m.Answer)))
	e.u16(uint16(len(m.Authority)))
	e.u16(uint16(len(m.Additional)))

	for _, q := range m.Question {
		e.name(q.Name)
		e.u16(uint16(q.Type))
		e.u16(uint16(q.Class))
	}
	for _, sec := range []RRSet{m.Answer, m.Authority, m.Additional} {
		for _, r := range sec {
			if err := e.rr(r); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

func (e *encoder) u16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

func (e *encoder) u32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// name emits a possibly-compressed domain name.
func (e *encoder) name(n Name) {
	s := string(n)
	for s != "" {
		if off, ok := e.offsets[s]; ok && off < 0x3FFF {
			e.u16(uint16(off) | 0xC000)
			return
		}
		if len(e.buf) < 0x3FFF {
			e.offsets[s] = len(e.buf)
		}
		label := s
		if i := strings.IndexByte(s, '.'); i >= 0 {
			label, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.buf = append(e.buf, 0)
}

func (e *encoder) rr(r RR) error {
	e.name(r.Name)
	e.u16(uint16(r.Type))
	e.u16(uint16(r.Class))
	e.u32(r.TTL)
	// Reserve RDLENGTH, fill after encoding RDATA.
	lenAt := len(e.buf)
	e.u16(0)
	start := len(e.buf)
	switch r.Type {
	case TypeA:
		a, err := netip.ParseAddr(r.Data)
		if err != nil || !a.Is4() {
			return fmt.Errorf("dnscore: bad A data %q", r.Data)
		}
		b := a.As4()
		e.buf = append(e.buf, b[:]...)
	case TypeAAAA:
		a, err := netip.ParseAddr(r.Data)
		if err != nil || !a.Is6() {
			return fmt.Errorf("dnscore: bad AAAA data %q", r.Data)
		}
		b := a.As16()
		e.buf = append(e.buf, b[:]...)
	case TypeNS, TypeCNAME:
		n, err := ParseName(r.Data)
		if err != nil {
			return fmt.Errorf("dnscore: bad name data %q: %w", r.Data, err)
		}
		e.name(n)
	case TypeTXT:
		// Character-string chunks of ≤255 octets.
		data := r.Data
		for len(data) > 255 {
			e.buf = append(e.buf, 255)
			e.buf = append(e.buf, data[:255]...)
			data = data[255:]
		}
		e.buf = append(e.buf, byte(len(data)))
		e.buf = append(e.buf, data...)
	default:
		// SOA, DNSKEY, RRSIG, DS, and anything else: opaque presentation
		// text (RDLENGTH already delimits it). Not interoperable, but
		// self-consistent for the simulation.
		e.buf = append(e.buf, r.Data...)
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:], uint16(len(e.buf)-start))
	return nil
}

type decoder struct {
	buf []byte
	pos int
}

// Decode parses a wire-format DNS message.
func Decode(b []byte) (*Message, error) {
	d := &decoder{buf: b}
	if len(b) < 12 {
		return nil, ErrShortMessage
	}
	m := &Message{}
	m.ID = d.mustU16()
	flags := d.mustU16()
	m.Response = flags&(1<<15) != 0
	m.Opcode = uint8(flags >> 11 & 0xF)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0xF)

	qd, an, ns, ar := d.mustU16(), d.mustU16(), d.mustU16(), d.mustU16()
	for i := 0; i < int(qd); i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		typ, err := d.u16()
		if err != nil {
			return nil, err
		}
		class, err := d.u16()
		if err != nil {
			return nil, err
		}
		m.Question = append(m.Question, Question{Name: name, Type: Type(typ), Class: Class(class)})
	}
	for _, sec := range []struct {
		n   uint16
		dst *RRSet
	}{{an, &m.Answer}, {ns, &m.Authority}, {ar, &m.Additional}} {
		for i := 0; i < int(sec.n); i++ {
			r, err := d.rr()
			if err != nil {
				return nil, err
			}
			*sec.dst = append(*sec.dst, r)
		}
	}
	return m, nil
}

func (d *decoder) mustU16() uint16 {
	v, _ := d.u16()
	return v
}

func (d *decoder) u16() (uint16, error) {
	if d.pos+2 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

// name decodes a possibly-compressed name starting at the current position.
func (d *decoder) name() (Name, error) {
	labels, pos, jumped, hops := []string{}, d.pos, false, 0
	for {
		if pos >= len(d.buf) {
			return "", ErrShortMessage
		}
		l := int(d.buf[pos])
		switch {
		case l == 0:
			if !jumped {
				d.pos = pos + 1
			}
			return ParseName(strings.Join(labels, "."))
		case l&0xC0 == 0xC0:
			if pos+2 > len(d.buf) {
				return "", ErrShortMessage
			}
			if hops++; hops > maxPointers {
				return "", ErrPointerLoop
			}
			target := int(binary.BigEndian.Uint16(d.buf[pos:]) & 0x3FFF)
			if !jumped {
				d.pos = pos + 2
				jumped = true
			}
			if target >= pos {
				return "", ErrPointerLoop // forward pointers are invalid
			}
			pos = target
		case l&0xC0 != 0:
			return "", fmt.Errorf("dnscore: reserved label type 0x%x", l&0xC0)
		default:
			if pos+1+l > len(d.buf) {
				return "", ErrShortMessage
			}
			labels = append(labels, string(d.buf[pos+1:pos+1+l]))
			pos += 1 + l
		}
	}
}

func (d *decoder) rr() (RR, error) {
	name, err := d.name()
	if err != nil {
		return RR{}, err
	}
	typ, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	class, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.u32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	if d.pos+int(rdlen) > len(d.buf) {
		return RR{}, ErrShortMessage
	}
	end := d.pos + int(rdlen)
	r := RR{Name: name, Type: Type(typ), Class: Class(class), TTL: ttl}
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return RR{}, fmt.Errorf("%w: A rdlength %d", ErrTrailingData, rdlen)
		}
		r.Data = netip.AddrFrom4([4]byte(d.buf[d.pos:end])).String()
		d.pos = end
	case TypeAAAA:
		if rdlen != 16 {
			return RR{}, fmt.Errorf("%w: AAAA rdlength %d", ErrTrailingData, rdlen)
		}
		r.Data = netip.AddrFrom16([16]byte(d.buf[d.pos:end])).String()
		d.pos = end
	case TypeNS, TypeCNAME:
		target, err := d.name()
		if err != nil {
			return RR{}, err
		}
		if d.pos != end {
			return RR{}, fmt.Errorf("%w: name rdata length mismatch", ErrTrailingData)
		}
		r.Data = string(target)
	case TypeTXT:
		var sb strings.Builder
		for d.pos < end {
			l := int(d.buf[d.pos])
			d.pos++
			if d.pos+l > end {
				return RR{}, fmt.Errorf("%w: TXT chunk overruns rdata", ErrTrailingData)
			}
			sb.Write(d.buf[d.pos : d.pos+l])
			d.pos += l
		}
		r.Data = sb.String()
	default:
		r.Data = string(d.buf[d.pos:end])
		d.pos = end
	}
	return r, nil
}

// String renders the message in a dig-like summary form.
func (m *Message) String() string {
	var sb strings.Builder
	kind := "query"
	if m.Response {
		kind = "response"
	}
	fmt.Fprintf(&sb, ";; %s id=%d rcode=%s aa=%v tc=%v\n", kind, m.ID, m.RCode, m.Authoritative, m.Truncated)
	for _, q := range m.Question {
		fmt.Fprintf(&sb, ";; question: %s\n", q)
	}
	for _, section := range []struct {
		name string
		rrs  RRSet
	}{{"answer", m.Answer}, {"authority", m.Authority}, {"additional", m.Additional}} {
		for _, r := range section.rrs {
			fmt.Fprintf(&sb, ";; %s: %s\n", section.name, r)
		}
	}
	return sb.String()
}
