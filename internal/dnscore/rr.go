package dnscore

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Type is a DNS resource record type.
type Type uint16

// Record types used by the simulation. Values follow the IANA registry.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeDS    Type = 43
)

var typeNames = map[Type]string{
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeDS:    "DS",
}

// String returns the mnemonic for known types and TYPEnnn otherwise.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class; only IN is supported.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes used by the simulation.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

var rcodeNames = map[RCode]string{
	RCodeNoError:  "NOERROR",
	RCodeFormErr:  "FORMERR",
	RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN",
	RCodeNotImp:   "NOTIMP",
	RCodeRefused:  "REFUSED",
}

// String returns the mnemonic for known rcodes and RCODEnnn otherwise.
func (r RCode) String() string {
	if s, ok := rcodeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// RR is a DNS resource record. RData holds the presentation form of the
// record data: a dotted-quad for A, a name for NS/CNAME, free text for TXT.
type RR struct {
	Name  Name
	Type  Type
	Class Class
	TTL   uint32
	Data  string
}

// String renders the record in zone-file style.
func (r RR) String() string {
	return fmt.Sprintf("%s %d IN %s %s", r.Name, r.TTL, r.Type, r.Data)
}

// A constructs an address record.
func A(name Name, ttl uint32, addr netip.Addr) RR {
	return RR{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, Data: addr.String()}
}

// NS constructs a delegation record.
func NS(name Name, ttl uint32, target Name) RR {
	return RR{Name: name, Type: TypeNS, Class: ClassIN, TTL: ttl, Data: string(target)}
}

// CNAME constructs an alias record.
func CNAME(name Name, ttl uint32, target Name) RR {
	return RR{Name: name, Type: TypeCNAME, Class: ClassIN, TTL: ttl, Data: string(target)}
}

// TXT constructs a text record.
func TXT(name Name, ttl uint32, text string) RR {
	return RR{Name: name, Type: TypeTXT, Class: ClassIN, TTL: ttl, Data: text}
}

// SOA constructs a start-of-authority record; data carries "mname rname serial".
func SOA(name Name, ttl uint32, mname Name, serial uint32) RR {
	return RR{Name: name, Type: TypeSOA, Class: ClassIN, TTL: ttl,
		Data: fmt.Sprintf("%s hostmaster.%s %d", mname, name, serial)}
}

// Addr parses the record data as an IP address; it returns the zero Addr
// for non-address records or malformed data.
func (r RR) Addr() netip.Addr {
	if r.Type != TypeA && r.Type != TypeAAAA {
		return netip.Addr{}
	}
	a, err := netip.ParseAddr(r.Data)
	if err != nil {
		return netip.Addr{}
	}
	return a
}

// Target parses the record data as a domain name; it returns "" for
// non-name records.
func (r RR) Target() Name {
	if r.Type != TypeNS && r.Type != TypeCNAME {
		return ""
	}
	n, err := ParseName(r.Data)
	if err != nil {
		return ""
	}
	return n
}

// Equal reports full record equality (name, type, class, TTL, data).
func (r RR) Equal(o RR) bool { return r == o }

// RRSet is an ordered collection of records.
type RRSet []RR

// Filter returns the records matching name and type. A type of 0 matches
// every type.
func (s RRSet) Filter(name Name, typ Type) RRSet {
	var out RRSet
	for _, r := range s {
		if r.Name == name && (typ == 0 || r.Type == typ) {
			out = append(out, r)
		}
	}
	return out
}

// Sort orders records by name, then type, then data, for deterministic
// output and comparison.
func (s RRSet) Sort() {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Name != s[j].Name {
			return s[i].Name < s[j].Name
		}
		if s[i].Type != s[j].Type {
			return s[i].Type < s[j].Type
		}
		return s[i].Data < s[j].Data
	})
}

// String renders the set one record per line.
func (s RRSet) String() string {
	lines := make([]string, len(s))
	for i, r := range s {
		lines[i] = r.String()
	}
	return strings.Join(lines, "\n")
}
