#!/usr/bin/env bash
# smoke_scale.sh — end-to-end smoke test of the paper-scale path:
#
#   1. stream a 50k-domain synthetic corpus to CSV twice with the same
#      seed and require byte-identical output (worldgen determinism)
#   2. ingest + classify the same corpus through retrodns -synth-domains
#      with 1 shard and with 8 shards and require identical findings JSON
#      (shard-count invariance at the binary level), then re-run with
#      -legacy-fanout and require the pre-shard-affine classify engine to
#      produce the same findings byte for byte
#   3. require the run report to carry the corpus gauges the sharded
#      dataset publishes (shard occupancy, intern pool sizes, estimated
#      corpus bytes)
#   4. guard the whole thing with a wall-clock budget so an accidental
#      quadratic ingest path fails CI instead of slowing it
#
# Run via `make smoke-scale` (part of CI).
set -eu
cd "$(dirname "$0")/.."

DOMAINS=${DOMAINS:-50000}
BUDGET_SECONDS=${BUDGET_SECONDS:-300}

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

go build -o "$workdir/worldgen" ./cmd/worldgen
go build -o "$workdir/retrodns" ./cmd/retrodns

start=$(date +%s)

"$workdir/worldgen" -out "$workdir/a" -domains "$DOMAINS" -seed 7 2>/dev/null
"$workdir/worldgen" -out "$workdir/b" -domains "$DOMAINS" -seed 7 2>/dev/null
cmp -s "$workdir/a/scans.csv" "$workdir/b/scans.csv" || {
    echo "smoke-scale: same seed produced different scans.csv" >&2
    exit 1
}
rows=$(wc -l <"$workdir/a/scans.csv")
if [ "$rows" -le "$DOMAINS" ]; then
    echo "smoke-scale: scans.csv has only $rows rows for $DOMAINS domains" >&2
    exit 1
fi

"$workdir/retrodns" -synth-domains "$DOMAINS" -seed 7 -shards 1 -json \
    >"$workdir/findings-1.json" 2>"$workdir/run-1.log"
"$workdir/retrodns" -synth-domains "$DOMAINS" -seed 7 -shards 8 -json \
    -report-json "$workdir/report-8.json" \
    >"$workdir/findings-8.json" 2>"$workdir/run-8.log"
cmp -s "$workdir/findings-1.json" "$workdir/findings-8.json" || {
    echo "smoke-scale: findings differ between -shards 1 and -shards 8" >&2
    diff "$workdir/findings-1.json" "$workdir/findings-8.json" | head >&2
    exit 1
}

"$workdir/retrodns" -synth-domains "$DOMAINS" -seed 7 -shards 8 -json -legacy-fanout \
    >"$workdir/findings-legacy.json" 2>"$workdir/run-legacy.log"
cmp -s "$workdir/findings-8.json" "$workdir/findings-legacy.json" || {
    echo "smoke-scale: findings differ between shard-affine and -legacy-fanout" >&2
    diff "$workdir/findings-8.json" "$workdir/findings-legacy.json" | head >&2
    exit 1
}

for gauge in retrodns_corpus_shard_domains retrodns_intern_strings \
    retrodns_cert_pool_size retrodns_corpus_bytes_estimate; do
    grep -q "\"$gauge\"" "$workdir/report-8.json" || {
        echo "smoke-scale: run report missing $gauge" >&2
        exit 1
    }
done

elapsed=$(($(date +%s) - start))
if [ "$elapsed" -gt "$BUDGET_SECONDS" ]; then
    echo "smoke-scale: took ${elapsed}s, budget ${BUDGET_SECONDS}s" >&2
    exit 1
fi

echo "smoke-scale: ok ($DOMAINS domains, $rows csv rows, ${elapsed}s)"
