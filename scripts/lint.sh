#!/usr/bin/env bash
# lint.sh — machine-check the repo's fault-tolerance conventions (PR 3),
# previously enforced only by reviewer grep:
#
#   1. `panic(` must not be reachable from data paths. Every panic in
#      non-test library/CLI code must be a known API-misuse assert or a
#      Must* static-table helper, allowlisted below by file and content.
#      A new panic — even in an allowlisted file — fails the build until
#      it is either converted to a typed error or explicitly added here.
#
#   2. Must* constructors (MustParse, MustAdd, MustName, ...) may only be
#      called from static tables: the world generator's fixed populations
#      and campaigns, tests, and examples. Data paths must use the
#      error-returning forms.
#
# Run via `make lint` (part of `make ci`).
set -u
cd "$(dirname "$0")/.."

fail=0

# Non-test library and CLI sources. Examples are demos with static
# fixture zones and are exempt from both rules.
srcs=$(find internal cmd -name '*.go' ! -name '*_test.go' | sort)

# ---- Rule 1: panic( allowlist -------------------------------------------
# file<TAB>content-regex. Content matching keeps the gate tight: a second,
# different panic in an allowlisted file still fails.
panic_allow="
internal/dnscore/name.go	panic(err)
internal/dnscore/zone.go	panic(err)
internal/ipmeta/ipmeta.go	panic(err)
internal/simtime/simtime.go	panic(err)
internal/scanner/scanner.go	panic(\"scanner: AddScan on a frozen Dataset
internal/obsv/obsv.go	panic(\"obsv: odd label list
internal/obsv/obsv.go	panic(fmt.Sprintf(\"obsv: metric %q re-registered
"

while IFS=: read -r file line content; do
    [ -z "$file" ] && continue
    allowed=0
    while IFS=$(printf '\t') read -r afile apattern; do
        [ -z "$afile" ] && continue
        if [ "$file" = "$afile" ] && printf '%s' "$content" | grep -qF "$apattern"; then
            allowed=1
            break
        fi
    done <<EOF
$panic_allow
EOF
    if [ "$allowed" -eq 0 ]; then
        echo "lint: $file:$line: unallowlisted panic( — return a typed error, or add an API-misuse assert to scripts/lint.sh" >&2
        echo "      $content" >&2
        fail=1
    fi
done <<EOF
$(grep -n 'panic(' $srcs /dev/null | grep -v '^\s*//')
EOF

# ---- Rule 2: Must* only in static tables --------------------------------
# Call sites of Must-prefixed identifiers (MustParse, zone.MustAdd, ...)
# outside the allowlisted static-table files. Definitions (func Must...,
# method declarations) and doc comments are excluded by pattern.
# ipmeta.go is allowlisted as a definition site: its Must* helpers wrap
# netip.MustParsePrefix for the world generator's static prefix tables.
must_allow_files="
internal/world/population.go
internal/world/campaign.go
internal/world/world.go
internal/ipmeta/ipmeta.go
"

while IFS=: read -r file line content; do
    [ -z "$file" ] && continue
    case "$content" in
        *"func Must"*|*"func ("*) continue ;;
    esac
    # Skip pure comment lines.
    if printf '%s' "$content" | grep -qE '^[[:space:]]*//'; then
        continue
    fi
    allowed=0
    for afile in $must_allow_files; do
        if [ "$file" = "$afile" ]; then
            allowed=1
            break
        fi
    done
    if [ "$allowed" -eq 0 ]; then
        echo "lint: $file:$line: Must* call outside a static table — use the error-returning form" >&2
        echo "      $content" >&2
        fail=1
    fi
done <<EOF
$(grep -nE '(^|[^[:alnum:]_])(\w+\.)?Must[A-Z][A-Za-z]*\(' $srcs /dev/null)
EOF

if [ "$fail" -ne 0 ]; then
    echo "lint: FAILED" >&2
    exit 1
fi
echo "lint: ok ($(printf '%s\n' $srcs | wc -l | tr -d ' ') files)"
