#!/usr/bin/env bash
# smoke_load.sh — CI load gate for the serving layer:
#
#   1. stream a 50k-domain synthetic corpus to CSV (worldgen)
#   2. for replicas in {1,2}: start retrodnsd on the corpus, wait for the
#      feed to finish, snapshot every /v1 endpoint body, then drive
#      cmd/loadgen against it (closed loop, fixed request budget, mixed
#      endpoints, zipf domain keys, rotating tenants)
#   3. require byte-identical endpoint bodies between the replica counts
#      (healthz excluded — it reports snapshot age) and a consistent:true
#      /v1/replicas fanout in the routed run
#   4. gate both load reports against the committed LOAD_BASELINE.json
#      via benchdiff: p99 may not exceed baseline x (1+tolerance), QPS
#      may not fall below baseline x (1-tolerance), errors fail outright
#   5. run BenchmarkServeQuery and require the prerendered hit path to
#      beat the committed baseline by >=2x (benchdiff -min-speedup)
#   6. guard the whole thing with a wall-clock budget
#
# Artifacts (reports, bodies, daemon logs) land in ${LOADDIR} so CI can
# upload them on failure. Run via `make smoke-load`.
set -eu
cd "$(dirname "$0")/.."

DOMAINS=${DOMAINS:-50000}
REQUESTS=${REQUESTS:-4000}
CONNECTIONS=${CONNECTIONS:-4}
TENANTS=${TENANTS:-3}
BUDGET_SECONDS=${BUDGET_SECONDS:-420}
LOADDIR=${LOADDIR:-/tmp/retrodns-load}

workdir=$(mktemp -d)
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT
mkdir -p "$LOADDIR"

go build -o "$workdir/worldgen" ./cmd/worldgen
go build -o "$workdir/retrodnsd" ./cmd/retrodnsd
go build -o "$workdir/loadgen" ./cmd/loadgen
go build -o "$workdir/benchdiff" ./cmd/benchdiff

start=$(date +%s)

"$workdir/worldgen" -out "$workdir/corpus" -domains "$DOMAINS" -seed 7 2>/dev/null

# start_daemon <replicas>: launch retrodnsd on the corpus, export addr
# once the listener is up, and wait until the CSV feed is fully ingested
# so every loadgen sample measures the final generation.
start_daemon() {
    local replicas=$1 log="$LOADDIR/daemon-r$1.log"
    "$workdir/retrodnsd" -listen 127.0.0.1:0 -scans-csv "$workdir/corpus/scans.csv" \
        -replicas "$replicas" 2>"$log" &
    pid=$!
    addr=
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|^serving /v1 API on http://||p' "$log" | head -1)
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            cat "$log" >&2
            echo "smoke-load: daemon (-replicas $replicas) exited before binding" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "smoke-load: no bound address in daemon log" >&2
        exit 1
    fi
    ok=0
    for _ in $(seq 1 600); do
        if grep -q 'csv feed complete' "$log"; then
            ok=1
            break
        fi
        sleep 0.2
    done
    if [ "$ok" -ne 1 ]; then
        cat "$log" >&2
        echo "smoke-load: feed not ingested within 120s (-replicas $replicas)" >&2
        exit 1
    fi
}

stop_daemon() {
    kill "$pid" 2>/dev/null
    wait "$pid" || {
        echo "smoke-load: daemon did not drain cleanly" >&2
        exit 1
    }
    pid=
}

# The endpoint bodies that must be byte-identical across replica counts.
# /v1/healthz is excluded (it reports wall-clock snapshot age); the
# domain probe is resolved from the corpus itself below.
probe_domain=
snapshot_bodies() {
    local tag=$1
    local dir="$workdir/bodies-$tag"
    mkdir -p "$dir"
    if [ -z "$probe_domain" ]; then
        curl -fsS "http://$addr/v1/patterns/stable" >"$workdir/stable.json"
        probe_domain=$(sed -n 's/^ *"\([a-z0-9.-]*\)",*$/\1/p' "$workdir/stable.json" | head -1)
        [ -n "$probe_domain" ] || {
            echo "smoke-load: no stable domain to probe" >&2
            exit 1
        }
    fi
    for ep in funnel shortlist patterns/T1 patterns/stable "domain/$probe_domain"; do
        curl -fsS "http://$addr/v1/$ep" >"$dir/$(echo "$ep" | tr / _).json"
    done
}

for replicas in 1 2; do
    start_daemon "$replicas"
    snapshot_bodies "r$replicas"
    if [ "$replicas" -gt 1 ]; then
        curl -fsS "http://$addr/v1/replicas" >"$LOADDIR/replicas.json"
        grep -q '"consistent": true' "$LOADDIR/replicas.json" || {
            cat "$LOADDIR/replicas.json" >&2
            echo "smoke-load: /v1/replicas reports mixed generations" >&2
            exit 1
        }
    fi
    "$workdir/loadgen" -target "http://$addr" -requests "$REQUESTS" \
        -duration 120s -warmup 2s -connections "$CONNECTIONS" \
        -tenants "$TENANTS" -seed 7 -label "replicas$replicas" \
        -out "$LOADDIR/load-r$replicas.json" 2>>"$LOADDIR/loadgen-r$replicas.log"
    stop_daemon
done

for f in "$workdir"/bodies-r1/*.json; do
    cmp -s "$f" "$workdir/bodies-r2/$(basename "$f")" || {
        echo "smoke-load: $(basename "$f") differs between -replicas 1 and -replicas 2" >&2
        diff "$f" "$workdir/bodies-r2/$(basename "$f")" | head >&2
        exit 1
    }
done

"$workdir/benchdiff" -baseline LOAD_BASELINE.json \
    -load "$LOADDIR/load-r1.json" -load "$LOADDIR/load-r2.json"

# The zero-copy acceptance gate: the prerendered hit path must beat the
# committed render-then-cache baseline by at least 2x.
go test -run '^$' -bench 'BenchmarkServeQuery' -benchmem -count=1 . \
    | tee "$LOADDIR/bench-serve.txt"
"$workdir/benchdiff" -baseline BENCH_BASELINE.json \
    -bench "$LOADDIR/bench-serve.txt" -min-speedup 'BenchmarkServeQuery/hit=2.0'

elapsed=$(($(date +%s) - start))
if [ "$elapsed" -gt "$BUDGET_SECONDS" ]; then
    echo "smoke-load: took ${elapsed}s, budget ${BUDGET_SECONDS}s" >&2
    exit 1
fi

echo "smoke-load: ok ($DOMAINS domains, $REQUESTS requests per replica config, ${elapsed}s)"
