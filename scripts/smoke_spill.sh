#!/usr/bin/env bash
# smoke_spill.sh — end-to-end gate for the out-of-core corpus:
#
#   A. ingest + classify a 200k-domain, 12-scan synthetic corpus fully
#      resident (-json findings, -report-json, peak RSS recorded)
#   B. ingest the same corpus with every shard spilled to on-disk
#      segments (-mem-budget-mb 0) and save it as corpus.snap + segments
#   C. in a fresh process, -spill-load the saved corpus and classify it
#      under the zero budget with streaming segment reads, recording
#      peak RSS
#
# and then require:
#   - findings JSON from A and C byte-identical (spill invariance at the
#     binary level, across a process boundary)
#   - C's run report carries the residency split (resident/spilled bytes,
#     spilled shard count) and segment read counters
#   - C's peak RSS at most half of A's: the classify-only process never
#     pays the resident corpus, which is the point of the subsystem
#   - a wall-clock budget so a quadratic spill path fails CI loudly
#
# The corpus runs 12 scan dates so the spillable window payload dominates
# the certificate pool (certs stay resident by design); that is the
# paper's shape — years of weekly scans over a mostly stable cert set.
#
# Run via `make smoke-spill` (part of CI). Logs land in
# ${SPILL_LOGDIR:-/tmp/retrodns-spill} for CI artifact upload.
set -eu
cd "$(dirname "$0")/.."

DOMAINS=${DOMAINS:-200000}
SCANS=${SCANS:-12}
BUDGET_SECONDS=${BUDGET_SECONDS:-420}
LOGDIR=${SPILL_LOGDIR:-/tmp/retrodns-spill}

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT
mkdir -p "$LOGDIR"

go build -o "$workdir/retrodns" ./cmd/retrodns

start=$(date +%s)

# A: fully resident reference run.
"$workdir/retrodns" -synth-domains "$DOMAINS" -synth-scans "$SCANS" -seed 7 \
    -json -print-maxrss \
    >"$LOGDIR/findings-resident.json" 2>"$LOGDIR/resident.log"
rss_a=$(sed -n 's/^maxrss_kb=//p' "$LOGDIR/resident.log")

# B: same corpus ingested under a zero budget and saved beside its
# segments. This process pays the ingest peak; the classify process below
# must not.
"$workdir/retrodns" -synth-domains "$DOMAINS" -synth-scans "$SCANS" -seed 7 \
    -spill-dir "$workdir/seg" -mem-budget-mb 0 -spill-save \
    2>"$LOGDIR/save.log"
ls "$workdir/seg"/seg-*.bin >/dev/null 2>&1 || {
    echo "smoke-spill: no segment files sealed" >&2
    exit 1
}

# C: fresh process, classify the saved corpus out of core. Streaming reads
# keep the segment payloads off the resident set (mmap's open-time CRC
# pass would fault every page into RSS).
"$workdir/retrodns" -spill-load -spill-dir "$workdir/seg" -mem-budget-mb 0 \
    -spill-read-mode stream -json -print-maxrss \
    -report-json "$LOGDIR/report-spill.json" \
    >"$LOGDIR/findings-spill.json" 2>"$LOGDIR/spill.log"
rss_c=$(sed -n 's/^maxrss_kb=//p' "$LOGDIR/spill.log")

cmp -s "$LOGDIR/findings-resident.json" "$LOGDIR/findings-spill.json" || {
    echo "smoke-spill: findings differ between resident and spilled runs" >&2
    diff "$LOGDIR/findings-resident.json" "$LOGDIR/findings-spill.json" | head >&2
    exit 1
}

grep -q '"spilled_shards": [1-9]' "$LOGDIR/report-spill.json" || {
    echo "smoke-spill: run report does not show spilled shards" >&2
    exit 1
}
for metric in retrodns_corpus_resident_bytes retrodns_corpus_spilled_bytes \
    retrodns_corpus_spilled_shards retrodns_segment_reads_total; do
    grep -q "\"$metric\"" "$LOGDIR/report-spill.json" || {
        echo "smoke-spill: run report missing $metric" >&2
        exit 1
    }
done

if [ -z "$rss_a" ] || [ -z "$rss_c" ]; then
    echo "smoke-spill: missing maxrss_kb markers (a='$rss_a' c='$rss_c')" >&2
    exit 1
fi
if [ $((rss_c * 2)) -gt "$rss_a" ]; then
    echo "smoke-spill: spilled classify RSS ${rss_c}KiB not under half of resident ${rss_a}KiB" >&2
    exit 1
fi

elapsed=$(($(date +%s) - start))
if [ "$elapsed" -gt "$BUDGET_SECONDS" ]; then
    echo "smoke-spill: took ${elapsed}s, budget ${BUDGET_SECONDS}s" >&2
    exit 1
fi

echo "smoke-spill: ok ($DOMAINS domains, resident ${rss_a}KiB vs spilled ${rss_c}KiB, ${elapsed}s)"
