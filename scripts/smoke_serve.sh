#!/usr/bin/env bash
# smoke_serve.sh — end-to-end smoke test of the retrodnsd serving daemon:
#
#   1. build retrodnsd and start it on a small -follow world (ephemeral port)
#   2. poll /v1/healthz until the first snapshot is published
#   3. hit every /v1 endpoint and require a generation in each response,
#      including a /v1/domain/{name} lookup for a domain extracted from
#      the /v1/patterns/stable listing
#   4. SIGTERM the daemon and require a clean drain (exit 0) plus a run
#      report carrying the serve section
#
# Run via `make smoke-serve` (part of CI).
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/retrodnsd" ./cmd/retrodnsd

"$workdir/retrodnsd" -listen 127.0.0.1:0 -follow -stable 60 \
    -report-json "$workdir/report.json" 2>"$workdir/daemon.log" &
pid=$!

# The daemon prints its bound address once the listener is up.
addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's|^serving /v1 API on http://||p' "$workdir/daemon.log" | head -1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        cat "$workdir/daemon.log" >&2
        echo "smoke-serve: daemon exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "smoke-serve: no bound address in daemon log" >&2
    exit 1
fi

fetch() { curl -fsS "http://$addr$1"; }

# healthz answers 503 until the first snapshot publish; poll it in.
ok=0
for _ in $(seq 1 300); do
    if fetch /v1/healthz >"$workdir/healthz.json" 2>/dev/null; then
        ok=1
        break
    fi
    sleep 0.1
done
if [ "$ok" -ne 1 ]; then
    cat "$workdir/daemon.log" >&2
    echo "smoke-serve: no snapshot published within 30s" >&2
    exit 1
fi
grep -q '"generation"' "$workdir/healthz.json" || {
    echo "smoke-serve: healthz missing generation" >&2
    exit 1
}

for path in /v1/funnel /v1/shortlist /v1/patterns/T1; do
    fetch "$path" >"$workdir/resp.json"
    grep -q '"generation"' "$workdir/resp.json" || {
        echo "smoke-serve: $path missing generation" >&2
        cat "$workdir/resp.json" >&2
        exit 1
    }
done

# Every response must carry the generation header the body claims.
curl -fsS -D "$workdir/headers.txt" -o /dev/null "http://$addr/v1/funnel"
grep -qi '^x-retrodns-generation:' "$workdir/headers.txt" || {
    echo "smoke-serve: funnel response missing X-Retrodns-Generation" >&2
    exit 1
}

# Pull a real domain out of the stable-pattern listing (classification
# needs a full period of scans, so poll while the replay advances) and
# look it up individually.
domain=
for _ in $(seq 1 600); do
    domain=$(fetch /v1/patterns/stable | sed -n 's/^    "\(.*\)"[,]*$/\1/p' | head -1)
    [ -n "$domain" ] && break
    sleep 0.1
done
if [ -z "$domain" ]; then
    echo "smoke-serve: no stable domain appeared in /v1/patterns/stable" >&2
    exit 1
fi
fetch "/v1/domain/$domain" >"$workdir/domain.json"
grep -q '"generation"' "$workdir/domain.json" || {
    echo "smoke-serve: /v1/domain/$domain missing generation" >&2
    exit 1
}

# Graceful drain: SIGTERM must exit 0 and emit the shutdown report.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=
if [ "$status" -ne 0 ]; then
    cat "$workdir/daemon.log" >&2
    echo "smoke-serve: daemon exited $status on SIGTERM" >&2
    exit 1
fi
grep -q '"serve"' "$workdir/report.json" || {
    echo "smoke-serve: run report missing serve section" >&2
    exit 1
}

echo "smoke-serve: ok (domain=$domain addr=$addr)"
