#!/usr/bin/env bash
# smoke_chaos.sh — end-to-end durability smoke test of the retrodnsd
# WAL + snapshot layer, driven by the chaos harness:
#
#   1. build retrodnsd and cmd/chaos
#   2. run every chaos campaign (kill mid-swap, truncated WAL tail,
#      garbled byte, duplicated log, SIGTERM drain, clock-skewed feed,
#      torn CSV line) against live daemon processes, asserting recovered
#      state — /v1 documents and the canonical run report — is
#      byte-identical to an uninterrupted run and that every injected
#      fault lands in a quarantine counter
#   3. run the warm-restart speedup gate on a 50k-domain corpus: warm
#      boot to final health must be at least 5x faster than cold
#   4. require the chaos verdict JSON to say pass, and require the
#      retrodns_wal_* / retrodns_feed_* metric families in the daemon
#      run reports the campaigns produced
#
# Run via `make smoke-chaos` (part of CI).
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/retrodnsd" ./cmd/retrodnsd
go build -o "$workdir/chaos" ./cmd/chaos

"$workdir/chaos" \
    -retrodnsd "$workdir/retrodnsd" \
    -workdir "$workdir/run" \
    -warm-domains 50000 -warm-speedup 5.0 \
    -report-json "$workdir/chaos.json"

grep -q '"pass": true' "$workdir/chaos.json" || {
    cat "$workdir/chaos.json" >&2
    echo "smoke-chaos: verdict JSON does not say pass" >&2
    exit 1
}

# The durable daemon's run report must export the WAL and feed metric
# families the campaigns assert against, plus the wal report section.
baseline="$workdir/run/baseline/report.json"
for fam in retrodns_wal_appends_total retrodns_wal_records_total \
    retrodns_wal_bytes_total retrodns_wal_snapshots_total \
    retrodns_wal_recovered_generation \
    retrodns_feed_rows_total retrodns_feed_batches_total; do
    grep -q "\"$fam\"" "$baseline" || {
        echo "smoke-chaos: baseline run report missing $fam" >&2
        exit 1
    }
done
grep -q '"wal"' "$baseline" || {
    echo "smoke-chaos: baseline run report missing wal section" >&2
    exit 1
}

# A damaged-recovery report must show the replay counters and the
# quarantined fault that campaign injected.
truncate="$workdir/run/truncate/report.json"
grep -q '"retrodns_wal_replayed_batches_total"' "$truncate" || {
    echo "smoke-chaos: truncate recovery report missing replay counter" >&2
    exit 1
}
grep -q '"torn_tail"' "$truncate" || {
    echo "smoke-chaos: truncate recovery report missing torn_tail quarantine" >&2
    exit 1
}

echo "smoke-chaos: ok"
