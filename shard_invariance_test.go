package retrodns_bench

import (
	"bytes"
	"fmt"
	"testing"

	"retrodns/internal/core"
	"retrodns/internal/report"
	"retrodns/internal/scanner"
	"retrodns/internal/world"
)

// TestShardCountInvariance is the end-to-end acceptance test for the
// sharded dataset: the full study analyzed over datasets sharded 1, 3,
// and 8 ways — bulk-ingested and incrementally Appended with a warm
// classification cache — must serialize to the exact same JSON report,
// byte for byte, and agree on every funnel count and the quarantine
// journal. Shard count is an execution knob, never an analysis input.
func TestShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full study replay")
	}
	cfg := world.Config{Seed: 2, StableDomains: 20, Campaigns: true, PDNSCoverage: 1}
	w := world.New(cfg)
	w.RunClock()
	if len(w.Errors) > 0 {
		t.Fatalf("world errors: %v", w.Errors)
	}
	sc := w.Scanner()
	dates := w.ScanDates()
	scans := make([][]*scanner.Record, len(dates))
	for i, d := range dates {
		scans[i] = sc.ScanWeek(d)
	}

	pipeline := func(ds *scanner.Dataset, cached bool) *core.Pipeline {
		p := &core.Pipeline{
			Params: core.DefaultParams(), Dataset: ds, Meta: w.Meta,
			PDNS: w.PDNSDB, CT: w.CT, DNSSEC: w.SecLog, Workers: 4,
		}
		if cached {
			p.Cache = core.NewClassifyCache()
		}
		return p
	}
	reportJSON := func(res *core.Result) []byte {
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, res); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}

	type outcome struct {
		bulk, incr []byte
		funnel     map[string]int
		quar       string
	}
	var want *outcome
	for _, shards := range []int{1, 3, 8} {
		// Bulk: every scan AddScanned into a fresh dataset, uncached run.
		bulk := scanner.NewDatasetShards(shards)
		for i, d := range dates {
			if err := bulk.AddScan(d, scans[i]); err != nil {
				t.Fatalf("shards=%d AddScan %s: %v", shards, d, err)
			}
		}
		bulkRes := pipeline(bulk, false).Run()
		if bulkRes.Stats.Shards != shards {
			t.Fatalf("Stats.Shards = %d, want %d", bulkRes.Stats.Shards, shards)
		}

		// Incremental: the same series Appended scan-by-scan with a warm
		// classification cache, re-running after each scan.
		incr := scanner.NewDatasetShards(shards)
		pipe := pipeline(incr, true)
		var incrRes *core.Result
		for i, d := range dates {
			if err := incr.Append(d, scans[i]); err != nil {
				t.Fatalf("shards=%d Append %s: %v", shards, d, err)
			}
			incrRes = pipe.Run()
		}

		got := &outcome{
			bulk:   reportJSON(bulkRes),
			incr:   reportJSON(incrRes),
			funnel: report.FunnelCounts(bulkRes),
			quar:   fmt.Sprint(bulk.Quarantine()),
		}
		if !bytes.Equal(got.bulk, got.incr) {
			t.Fatalf("shards=%d: incremental report diverged from bulk", shards)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want.bulk, got.bulk) {
			t.Errorf("shards=%d: bulk report differs from shards=1\nshards=1:\n%s\nshards=%d:\n%s",
				shards, want.bulk, shards, got.bulk)
		}
		for k, v := range want.funnel {
			if got.funnel[k] != v {
				t.Errorf("shards=%d: funnel[%s] = %d, want %d", shards, k, got.funnel[k], v)
			}
		}
		if want.quar != got.quar {
			t.Errorf("shards=%d: quarantine journal differs:\n%s\nvs\n%s", shards, got.quar, want.quar)
		}
	}
}
