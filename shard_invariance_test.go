package retrodns_bench

import (
	"bytes"
	"fmt"
	"testing"

	"retrodns/internal/core"
	"retrodns/internal/report"
	"retrodns/internal/scanner"
	"retrodns/internal/world"
)

// TestShardCountInvariance is the end-to-end acceptance test for the
// sharded dataset and the shard-affine classify engine: the full study
// analyzed over datasets sharded 1, 3, and 8 ways, with worker pools of
// 1 and 8 — bulk-ingested uncached, bulk with the legacy per-domain
// fan-out, and incrementally Appended with a warm classification cache —
// must serialize to the exact same JSON report, byte for byte, and agree
// on every funnel count and the quarantine journal. Shard count, worker
// count, and fan-out strategy are execution knobs, never analysis inputs.
func TestShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full study replay")
	}
	cfg := world.Config{Seed: 2, StableDomains: 20, Campaigns: true, PDNSCoverage: 1}
	w := world.New(cfg)
	w.RunClock()
	if len(w.Errors) > 0 {
		t.Fatalf("world errors: %v", w.Errors)
	}
	sc := w.Scanner()
	dates := w.ScanDates()
	scans := make([][]*scanner.Record, len(dates))
	for i, d := range dates {
		scans[i] = sc.ScanWeek(d)
	}

	pipeline := func(ds *scanner.Dataset, workers int, cached, legacy bool) *core.Pipeline {
		p := &core.Pipeline{
			Params: core.DefaultParams(), Dataset: ds, Meta: w.Meta,
			PDNS: w.PDNSDB, CT: w.CT, DNSSEC: w.SecLog,
			Workers: workers, LegacyFanout: legacy,
		}
		if cached {
			p.Cache = core.NewClassifyCache()
		}
		return p
	}
	reportJSON := func(res *core.Result) []byte {
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, res); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}

	type outcome struct {
		bulk, incr []byte
		funnel     map[string]int
		quar       string
	}
	var want *outcome
	for _, shards := range []int{1, 3, 8} {
		// Bulk: every scan AddScanned into a fresh dataset. The uncached
		// shard-affine run is repeated for each worker-pool size and once
		// with the legacy per-domain fan-out — every report must be
		// byte-identical.
		bulk := scanner.NewDatasetShards(shards)
		for i, d := range dates {
			if err := bulk.AddScan(d, scans[i]); err != nil {
				t.Fatalf("shards=%d AddScan %s: %v", shards, d, err)
			}
		}
		var bulkRes *core.Result
		var bulkJSON []byte
		for _, workers := range []int{1, 8} {
			res := pipeline(bulk, workers, false, false).Run()
			if res.Stats.Shards != shards {
				t.Fatalf("Stats.Shards = %d, want %d", res.Stats.Shards, shards)
			}
			j := reportJSON(res)
			if bulkJSON == nil {
				bulkRes, bulkJSON = res, j
			} else if !bytes.Equal(bulkJSON, j) {
				t.Fatalf("shards=%d workers=%d: report diverged from workers=1", shards, workers)
			}
		}
		if legacyJSON := reportJSON(pipeline(bulk, 8, false, true).Run()); !bytes.Equal(bulkJSON, legacyJSON) {
			t.Fatalf("shards=%d: legacy fan-out report diverged from shard-affine\nshard-affine:\n%s\nlegacy:\n%s",
				shards, bulkJSON, legacyJSON)
		}

		// Incremental: the same series Appended scan-by-scan with a warm
		// classification cache, re-running after each scan.
		incr := scanner.NewDatasetShards(shards)
		pipe := pipeline(incr, 4, true, false)
		var incrRes *core.Result
		for i, d := range dates {
			if err := incr.Append(d, scans[i]); err != nil {
				t.Fatalf("shards=%d Append %s: %v", shards, d, err)
			}
			incrRes = pipe.Run()
		}

		got := &outcome{
			bulk:   bulkJSON,
			incr:   reportJSON(incrRes),
			funnel: report.FunnelCounts(bulkRes),
			quar:   fmt.Sprint(bulk.Quarantine()),
		}
		if !bytes.Equal(got.bulk, got.incr) {
			t.Fatalf("shards=%d: incremental report diverged from bulk", shards)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want.bulk, got.bulk) {
			t.Errorf("shards=%d: bulk report differs from shards=1\nshards=1:\n%s\nshards=%d:\n%s",
				shards, want.bulk, shards, got.bulk)
		}
		for k, v := range want.funnel {
			if got.funnel[k] != v {
				t.Errorf("shards=%d: funnel[%s] = %d, want %d", shards, k, got.funnel[k], v)
			}
		}
		if want.quar != got.quar {
			t.Errorf("shards=%d: quarantine journal differs:\n%s\nvs\n%s", shards, got.quar, want.quar)
		}
	}
}
