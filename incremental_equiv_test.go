package retrodns_bench

import (
	"bytes"
	"testing"

	"retrodns/internal/core"
	"retrodns/internal/report"
	"retrodns/internal/scanner"
	"retrodns/internal/simtime"
	"retrodns/internal/world"
)

// TestIncrementalReplayBytesIdentical is the end-to-end acceptance test for
// the incremental engine: a study ingested scan-by-scan through
// Dataset.Append with a warm classification cache must serialize to the
// exact same JSON report as a cold full pipeline over the same prefix —
// byte for byte, at every step, regardless of worker count. The warm side
// runs 8 shard-affine workers against a serial cold side, so every
// comparison also crosses the workers-1-vs-8 axis of the shard-affine
// cached path (internal/core's TestIncrementalReplayEquivalence covers the
// same axis per-scan on the fabricated world).
func TestIncrementalReplayBytesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full study replay")
	}
	cfg := world.Config{Seed: 2, StableDomains: 20, Campaigns: true, PDNSCoverage: 1}
	w := world.New(cfg)
	w.RunClock()
	if len(w.Errors) > 0 {
		t.Fatalf("world errors: %v", w.Errors)
	}
	sc := w.Scanner()
	dates := w.ScanDates()
	scans := make([][]*scanner.Record, len(dates))
	for i, d := range dates {
		scans[i] = sc.ScanWeek(d)
	}

	inc := scanner.NewDataset()
	pipe := &core.Pipeline{
		Params: core.DefaultParams(), Dataset: inc, Meta: w.Meta,
		PDNS: w.PDNSDB, CT: w.CT, DNSSEC: w.SecLog,
		Workers: 8, Cache: core.NewClassifyCache(),
	}
	coldJSON := func(n int) []byte {
		ds := scanner.NewDataset()
		for i := 0; i < n; i++ {
			ds.AddScan(dates[i], scans[i])
		}
		p := &core.Pipeline{
			Params: core.DefaultParams(), Dataset: ds, Meta: w.Meta,
			PDNS: w.PDNSDB, CT: w.CT, DNSSEC: w.SecLog, Workers: 1,
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, p.Run()); err != nil {
			t.Fatalf("cold WriteJSON: %v", err)
		}
		return buf.Bytes()
	}

	checkEvery := 1
	if len(dates) > 60 {
		// Byte-check every scan through the first campaign window, then
		// sample: the cold rerun is the expensive side.
		checkEvery = 4
	}
	var lastGen uint64
	for i, date := range dates {
		inc.Append(date, scans[i])
		res := pipe.Run()
		if g := res.Stats.Generation; g <= lastGen {
			t.Fatalf("scan %s: generation did not advance (%d -> %d)", date, lastGen, g)
		} else {
			lastGen = g
		}
		if i%checkEvery != 0 && i != len(dates)-1 && i > 60 {
			continue
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, res); err != nil {
			t.Fatalf("incremental WriteJSON: %v", err)
		}
		want := coldJSON(i + 1)
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("scan %d (%s): incremental report diverged from cold run\nincremental:\n%s\ncold:\n%s",
				i, date, buf.Bytes(), want)
		}
	}
	if lastGen != uint64(len(dates))+1 {
		t.Fatalf("final generation %d, want %d (freeze + one per append)", lastGen, len(dates)+1)
	}
	if simtime.PeriodOf(dates[len(dates)-1]) != simtime.NumPeriods-1 {
		t.Fatalf("study did not reach the final period")
	}
}
