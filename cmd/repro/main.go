// Command repro regenerates every table and figure of the paper from a
// freshly simulated study. With no flags it prints everything; individual
// artifacts can be selected with -table / -figure / -funnel /
// -observability.
//
//	repro -table 2          # the hijacked-domains table
//	repro -figure 2         # the kyvernisi.gr deployment map
//	repro -all              # everything (default)
//	repro -seed 3 -stable 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"retrodns/internal/core"
	"retrodns/internal/dnscore"
	"retrodns/internal/obsv"
	"retrodns/internal/pdns"
	"retrodns/internal/report"
	"retrodns/internal/scanner"
	"retrodns/internal/simtime"
	"retrodns/internal/synth"
	"retrodns/internal/world"
)

func main() {
	var (
		table   = flag.Int("table", 0, "print one table (1,2,3,4,5,9)")
		figure  = flag.Int("figure", 0, "print one figure (2,3,4,5)")
		funnel  = flag.Bool("funnel", false, "print the methodology funnel (§4.2–§4.5)")
		observ  = flag.Bool("observability", false, "print the §5.3 observability statistics")
		counter = flag.Bool("counterfactual", false, "run the §7.2 Registry Lock counterfactual")
		all     = flag.Bool("all", false, "print everything")
		seed    = flag.Int64("seed", 1, "world generation seed")
		stable  = flag.Int("stable", 400, "benign stable-domain population")
		workers = flag.Int("workers", 0, "pipeline worker-pool size (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", scanner.DefaultShards, "dataset shard count (1..64)")
		strict  = flag.Bool("strict", false, "treat any record the ingest gate would quarantine as a fatal error instead of skipping it")
		shortRn = flag.Bool("quiet", false, "suppress progress output")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		repJSON = flag.String("report-json", "", "write the machine-readable run report to this file ('-' for stdout)")
		synthN  = flag.Int("synth-domains", 0, "skip the simulator: classify a paper-shaped synthetic corpus of this many domains (profiling mode)")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}
	if *synthN > 0 {
		// Profiling mode: no simulator, no tables — just sharded ingest of
		// the synthetic corpus and one uncached classification run, so a
		// -cpuprofile is dominated by BuildMap/Classify rather than world
		// generation. `make profile-classify` drives this path.
		runSynthClassify(*synthN, *seed, *shards, *workers, *repJSON, *shortRn)
		return
	}
	if *table == 0 && *figure == 0 && !*funnel && !*observ && !*counter {
		*all = true
	}

	cfg := world.DefaultConfig()
	cfg.Seed = *seed
	cfg.StableDomains = *stable
	cfg.TransitionDomains = *stable * 3 / 100
	cfg.NoisyDomains = *stable / 250
	if cfg.NoisyDomains < 2 {
		cfg.NoisyDomains = 2
	}

	progress := func(format string, args ...any) {
		if !*shortRn {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	progress("generating world (seed %d, %d stable domains, full campaign replay)...", cfg.Seed, cfg.StableDomains)
	w := world.New(cfg)
	progress("running study clock and weekly scans (%d days)...", simtime.StudyDays)
	ds := w.RunShards(*shards)
	if len(w.Errors) > 0 {
		for _, err := range w.Errors {
			fmt.Fprintf(os.Stderr, "world error: %v\n", err)
		}
		os.Exit(1)
	}
	if q := ds.Quarantine(); q.Total > 0 {
		fmt.Fprintln(os.Stderr, q)
		if *strict {
			fmt.Fprintln(os.Stderr, "strict: refusing to analyze a partially-malformed feed")
			os.Exit(1)
		}
	}
	domains, records := ds.Size()
	progress("%s; dataset: %d domains, %d records", w.Summary(), domains, records)

	progress("running detection pipeline...")
	metrics := obsv.NewRegistry()
	ds.SetMetrics(metrics)
	w.PDNSDB.SetMetrics(metrics)
	w.CT.SetMetrics(metrics)
	pipe := &core.Pipeline{Params: core.DefaultParams(), Dataset: ds, Meta: w.Meta, PDNS: w.PDNSDB, CT: w.CT, Workers: *workers, Cache: core.NewClassifyCache(), Metrics: metrics}
	res := pipe.Run()
	progress("%s", res.Stats)

	if *repJSON != "" {
		doc := report.BuildRunReport(res, ds.Quarantine(), metrics)
		out := os.Stdout
		if *repJSON != "-" {
			f, err := os.Create(*repJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "report-json:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := doc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "report-json:", err)
			os.Exit(1)
		}
	}

	sectors := make(map[dnscore.Name]string)
	for _, truth := range w.TruthList() {
		if truth.Sector != "" {
			sectors[truth.Domain] = truth.Sector
		}
	}

	emit := func(s string) { fmt.Println(s) }

	if *all || *funnel {
		emit(report.Funnel(res))
	}
	if *all || *table == 1 {
		emit("Table 1: annotated scan data for kyvernisi.gr around the hijack")
		hijack := findDomain(res, "kyvernisi.gr")
		from, to := simtime.Date(0), simtime.StudyEnd
		if hijack != nil {
			from, to = hijack.Date-21, hijack.Date+35
		}
		emit(report.Table1(ds, "kyvernisi.gr", from, to))
	}
	if *all || *figure == 2 {
		emit("Figure 2: deployment map of kyvernisi.gr")
		emit(report.PatternGallery(ds, core.DefaultParams(), map[string]dnscore.Name{
			"kyvernisi.gr": "kyvernisi.gr",
		}))
	}
	if *all || *figure == 3 || *figure == 4 || *figure == 5 {
		emit("Figures 3–5: representative deployment patterns")
		emit(report.PatternGallery(ds, core.DefaultParams(), map[string]dnscore.Name{
			"S (stable)":               "stable0000.com",
			"X (transition)":           "mover0000.com",
			"T1 (transient, new cert)": "kyvernisi.gr",
			"T2 (transient, proxy)":    "parlament.ch",
			"noisy":                    "churn0000.com",
		}))
	}
	if *all || *table == 2 {
		emit(report.Table2(res.Hijacked))
	}
	if *all || *table == 3 {
		emit(report.Table3(res.Targeted))
	}
	if *all || *table == 4 {
		emit(report.Table4(res.Hijacked, res.Targeted, sectors))
	}
	if *all || *table == 5 {
		emit(report.Table5(res.Hijacked, res.Targeted, w.Meta.Orgs))
	}
	if *all || *table == 9 {
		crl, _ := w.Comodo.CRL()
		emit(report.Table9(res.Hijacked, func(f *core.Finding) (bool, bool) {
			switch f.IssuerCA {
			case "Comodo":
				_, revoked := crl[f.CertFP]
				return revoked, true
			case "Let's Encrypt":
				return false, false // OCSP only: unknowable retroactively
			default:
				return false, false
			}
		}))
	}
	if *all || *observ {
		stats := core.Observability(res.Hijacked, ds, w.PDNSDB, w.CT)
		emit(report.ObservabilityReport(stats))
		emit(report.ZoneFileReport(res.Hijacked, w.ZoneFiles))
	}
	if *all || *counter {
		progress("running the §7.2 Registry Lock counterfactual (second world)...")
		lockCfg := cfg
		lockCfg.RegistryLockAll = true
		lw := world.New(lockCfg)
		lds := lw.Run()
		lp := &core.Pipeline{Params: core.DefaultParams(), Dataset: lds, Meta: lw.Meta, PDNS: lw.PDNSDB, CT: lw.CT, Workers: *workers}
		lres := lp.Run()
		truthHijacked := 0
		for _, truth := range lw.TruthList() {
			if truth.Kind == "hijacked" {
				truthHijacked++
			}
		}
		emit("Counterfactual: Registry Lock on every victim (paper §7.2)")
		emit(fmt.Sprintf("  attacks blocked at the registry:   %d", len(lw.Prevented)))
		emit(fmt.Sprintf("  hijacks still executed (provider): %d", truthHijacked))
		emit(fmt.Sprintf("  hijacks the pipeline detects:      %d (pivot anchors gone)", len(lres.Hijacked)))
		emit(fmt.Sprintf("  targeted verdicts:                 %d (stagings still visible)", len(lres.Targeted)))
	}
}

// runSynthClassify materializes a synthetic corpus (internal/synth),
// ingests it into a sharded dataset, and runs the uncached pipeline once,
// printing the funnel and stage stats. The run report (when requested)
// carries the same schema as the simulator path.
func runSynthClassify(domains int, seed int64, shards, workers int, repJSON string, quiet bool) {
	g := synth.New(synth.Config{Domains: domains, Seed: seed})
	ds := scanner.NewDatasetShards(shards)
	total := 0
	for _, d := range g.ScanDates() {
		batch := g.Scan(d)
		total += len(batch)
		if err := ds.AddScan(d, batch); err != nil {
			fmt.Fprintln(os.Stderr, "synth ingest:", err)
			os.Exit(1)
		}
	}
	ds.Freeze()
	if !quiet {
		fmt.Fprintf(os.Stderr, "synth corpus: %d domains, %d records (seed %d, %d shards)\n", domains, total, seed, shards)
	}
	pipe := &core.Pipeline{Params: core.DefaultParams(), Dataset: ds, PDNS: pdns.NewDB(), Workers: workers}
	res := pipe.Run()
	fmt.Println(report.Funnel(res))
	fmt.Print(res.Stats)
	if repJSON != "" {
		doc := report.BuildRunReport(res, ds.Quarantine(), nil)
		out := os.Stdout
		if repJSON != "-" {
			f, err := os.Create(repJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "report-json:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := doc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "report-json:", err)
			os.Exit(1)
		}
	}
}

func findDomain(res *core.Result, domain dnscore.Name) *core.Finding {
	for _, f := range res.Findings() {
		if f.Domain == domain {
			return f
		}
	}
	return nil
}
