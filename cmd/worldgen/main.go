// Command worldgen generates a synthetic study and exports its raw data
// sets as CSV — the shapes a researcher would receive from Censys,
// DomainTools, and crt.sh — plus the simulation's ground truth, so the
// pipeline (or any other tool) can be exercised on the data externally.
//
//	worldgen -out ./data -seed 1 -stable 400
//
// Files written: scans.csv, pdns.csv, ct.csv, truth.csv.
//
// With -domains N (N > 0) worldgen switches to paper-scale mode: instead
// of simulating a behavioral world it streams a synthetic corpus of N
// registered domains (internal/synth) straight into scans.csv, one record
// at a time — constant memory at any corpus size, so a million-domain
// corpus needs no more RAM than a hundred-domain one. Deployment sizes
// follow a zipf distribution (-zipf-s). Generation is a pure function of
// the seed: the same -seed (with the same -domains/-zipf-s/-scans) always
// yields a byte-identical scans.csv. Only scans.csv is written in this
// mode — there is no simulated world behind the records to export pDNS,
// CT, or ground truth from.
//
//	worldgen -out ./data -domains 1000000 -zipf-s 1.1 -seed 7
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"retrodns/internal/scanner"
	"retrodns/internal/simtime"
	"retrodns/internal/synth"
	"retrodns/internal/world"
)

func main() {
	var (
		out     = flag.String("out", "data", "output directory")
		seed    = flag.Int64("seed", 1, "world generation seed")
		stable  = flag.Int("stable", 200, "benign stable-domain population")
		domains = flag.Int("domains", 0, "paper-scale mode: stream a synthetic corpus with this many registered domains (0 = simulate a world)")
		zipfS   = flag.Float64("zipf-s", 1.1, "zipf exponent for synthetic deployment popularity")
		scans   = flag.Int("scans", 4, "number of synthetic scan dates")
	)
	flag.Parse()

	if *domains > 0 {
		writeSynth(*out, synth.Config{Domains: *domains, ZipfS: *zipfS, Seed: *seed, Scans: *scans})
		return
	}

	cfg := world.DefaultConfig()
	cfg.Seed = *seed
	cfg.StableDomains = *stable
	cfg.TransitionDomains = *stable * 3 / 100
	cfg.NoisyDomains = max(2, *stable/250)

	fmt.Fprintf(os.Stderr, "generating world (seed %d)...\n", cfg.Seed)
	w := world.New(cfg)
	ds := w.Run()
	if len(w.Errors) > 0 {
		for _, err := range w.Errors {
			fmt.Fprintln(os.Stderr, "world error:", err)
		}
		os.Exit(1)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	// scans.csv — the CUIDS analogue.
	writeCSV(filepath.Join(*out, "scans.csv"), scanner.ScanCSVHeader,
		func(emit func([]string)) {
			for _, domain := range ds.Domains() {
				for _, r := range ds.DomainRecords(domain, 0, 0) {
					// A record covering several registered domains would
					// repeat per domain; emit it once under its first SAN.
					if r.Cert.SANs[0].RegisteredDomain() != domain && r.Cert.SANs[0] != domain {
						continue
					}
					emit(scanner.FormatScanRow(r))
				}
			}
		})

	// pdns.csv — the DomainTools analogue.
	writeCSV(filepath.Join(*out, "pdns.csv"),
		[]string{"name", "type", "data", "first_seen", "last_seen", "count"},
		func(emit func([]string)) {
			for _, e := range w.PDNSDB.All() {
				emit([]string{
					string(e.Name), e.Type.String(), e.Data,
					e.FirstSeen.String(), e.LastSeen.String(), fmt.Sprint(e.Count),
				})
			}
		})

	// ct.csv — the crt.sh analogue.
	writeCSV(filepath.Join(*out, "ct.csv"),
		[]string{"crtsh_id", "logged_at", "issuer", "serial", "not_before", "not_after", "names"},
		func(emit func([]string)) {
			for _, e := range w.CT.Entries() {
				names := make([]string, len(e.Cert.SANs))
				for i, n := range e.Cert.SANs {
					names[i] = string(n)
				}
				emit([]string{
					fmt.Sprint(e.ID), e.LoggedAt.String(), e.Cert.Issuer,
					fmt.Sprint(e.Cert.Serial), e.Cert.NotBefore.String(), e.Cert.NotAfter.String(),
					strings.Join(names, " "),
				})
			}
		})

	// truth.csv — the simulation's ground truth (the paper has none).
	writeCSV(filepath.Join(*out, "truth.csv"),
		[]string{"domain", "kind", "method", "sector", "country"},
		func(emit func([]string)) {
			for _, t := range w.TruthList() {
				emit([]string{string(t.Domain), t.Kind, t.Method, t.Sector, string(t.Country)})
			}
		})

	nd, nr := ds.Size()
	fmt.Fprintf(os.Stderr, "wrote %s: %d domains, %d scan records, %d pdns rows, %d CT entries (study %s..%s)\n",
		*out, nd, nr, w.PDNSDB.Rows(), w.CT.Size(), simtime.StudyStart, simtime.StudyEnd-1)
}

// writeSynth streams a paper-scale synthetic corpus into scans.csv.
// Records flow generator → csv writer → buffered file one at a time;
// nothing is accumulated, so memory stays flat regardless of corpus size.
func writeSynth(out string, cfg synth.Config) {
	g := synth.New(cfg)
	dates := g.ScanDates()
	fmt.Fprintf(os.Stderr, "streaming synth corpus (seed %d, %d domains, ~%d records/scan, %d scans)...\n",
		cfg.Seed, g.Config().Domains, g.EstimatedRecords(), len(dates))
	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(out, "scans.csv")
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	cw := csv.NewWriter(bw)
	if err := cw.Write(scanner.ScanCSVHeader); err != nil {
		fatal(err)
	}
	rows := 0
	for _, date := range dates {
		g.EmitScan(date, func(r *scanner.Record) {
			rows++
			if err := cw.Write(scanner.FormatScanRow(r)); err != nil {
				fatal(err)
			}
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d scan records over %d domains, %d scans\n",
		path, rows, g.Config().Domains, len(dates))
}

func writeCSV(path string, header []string, fill func(emit func([]string))) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write(header); err != nil {
		fatal(err)
	}
	fill(func(row []string) {
		if err := cw.Write(row); err != nil {
			fatal(err)
		}
	})
	cw.Flush()
	if err := cw.Error(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "worldgen:", err)
	os.Exit(1)
}
