package main

import (
	"math/rand"
	"testing"
	"time"

	"retrodns/internal/core"
	"retrodns/internal/dnscore"
	"retrodns/internal/report"
	"retrodns/internal/serve"
	"retrodns/internal/simtime"

	"net/http/httptest"
	"strings"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("domain=60, shortlist=10,funnel=0,healthz=5")
	if err != nil {
		t.Fatal(err)
	}
	want := []mixEntry{{"domain", 60}, {"shortlist", 10}, {"healthz", 5}}
	if len(mix) != len(want) {
		t.Fatalf("mix = %v, want %v", mix, want)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Errorf("mix[%d] = %v, want %v", i, mix[i], want[i])
		}
	}
	for _, bad := range []string{"", "nope=5", "domain", "domain=-1", "domain=x", "domain=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestPickEndpointRespectsWeights(t *testing.T) {
	mix := []mixEntry{{"domain", 3}, {"funnel", 1}}
	r := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[pickEndpoint(mix, 4, r)]++
	}
	if counts["domain"] < 2700 || counts["domain"] > 3300 {
		t.Errorf("domain drawn %d/4000 with weight 3/4", counts["domain"])
	}
	if counts["domain"]+counts["funnel"] != 4000 {
		t.Errorf("unexpected endpoints drawn: %v", counts)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 50}, {0.90, 90}, {0.99, 100}, {0.999, 100}, {0.10, 10},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("p%.3f = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("empty percentile = %d, want 0", got)
	}
	if got := percentile([]int64{7}, 0.5); got != 7 {
		t.Errorf("singleton percentile = %d, want 7", got)
	}
}

func TestSampleName(t *testing.T) {
	if got := sampleName("", "domain"); got != "domain" {
		t.Errorf("unlabeled = %q", got)
	}
	if got := sampleName("replicas2", "all"); got != "replicas2/all" {
		t.Errorf("labeled = %q", got)
	}
}

// loadTestResult mirrors the serve package's synthetic fixture closely
// enough for an end-to-end loadgen run against a live engine.
func loadTestResult() *core.Result {
	res := &core.Result{
		History: map[dnscore.Name]map[simtime.Period]core.Category{
			"steady.com":  {0: core.CategoryStable},
			"busy.org":    {0: core.CategoryStable},
			"victim.net":  {0: core.CategoryStable},
			"fourth.info": {0: core.CategoryStable},
		},
		Funnel: core.FunnelStats{
			Domains: 4, Maps: 4,
			DomainCategories: map[core.Category]int{core.CategoryStable: 4},
		},
	}
	res.Stats.Generation = 3
	return res
}

// TestDriveAgainstLiveEngine runs the full generator against an
// httptest server wrapping a real engine and checks the report shape:
// schema, per-endpoint samples, the aggregate, and sane counts.
func TestDriveAgainstLiveEngine(t *testing.T) {
	e := serve.NewEngine(serve.Options{})
	e.Publish(serve.BuildSnapshot(loadTestResult(), nil, time.Now()))
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	mix, err := parseMix("domain=50,funnel=25,patterns=25")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config{
		target: srv.URL, duration: 900 * time.Millisecond,
		requests: 200, connections: 2, warmup: 50 * time.Millisecond,
		mix: mix, tenants: 2, zipfS: 1.1, seed: 42, label: "test",
	}
	domains, err := fetchDomains(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 4 {
		t.Fatalf("fetched %d domains, want 4", len(domains))
	}
	rep := drive(srv.Client(), cfg, domains)
	if rep.Schema != report.LoadReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Samples) == 0 {
		t.Fatal("no samples")
	}
	var total *report.LoadSample
	for i := range rep.Samples {
		s := &rep.Samples[i]
		if !strings.HasPrefix(s.Name, "test/") {
			t.Errorf("sample %q missing label prefix", s.Name)
		}
		if s.Name == "test/all" {
			total = s
		}
		if s.Errors != 0 {
			t.Errorf("sample %s saw %d errors", s.Name, s.Errors)
		}
		if s.Requests > 0 && (s.P50NS <= 0 || s.P99NS < s.P50NS) {
			t.Errorf("sample %s percentiles out of order: p50=%d p99=%d", s.Name, s.P50NS, s.P99NS)
		}
	}
	if total == nil {
		t.Fatal("no aggregate sample")
	}
	if total.Requests == 0 || total.QPS <= 0 {
		t.Errorf("aggregate = %+v", total)
	}
	// The fixed budget caps measured requests (a few in-flight overshoots
	// at the deadline are impossible: the budget is debited pre-flight).
	if total.Requests > cfg.requests {
		t.Errorf("measured %d requests past the %d budget", total.Requests, cfg.requests)
	}
	if len(rep.Metrics) == 0 {
		t.Error("no obsv metrics embedded")
	}
}

// TestLoadReportRoundTrip pins the strict reader against Encode.
func TestLoadReportRoundTrip(t *testing.T) {
	rep := report.LoadReport{
		Schema: report.LoadReportSchema, Target: "http://x", Connections: 2,
		Samples: []report.LoadSample{{Name: "all", Requests: 10, QPS: 100, P50NS: 1000, P99NS: 5000}},
	}
	var buf strings.Builder
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := report.ReadLoadReport(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples[0] != rep.Samples[0] {
		t.Errorf("round trip: %+v != %+v", got.Samples[0], rep.Samples[0])
	}
	if _, err := report.ReadLoadReport(strings.NewReader(`{"schema":"nope"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := report.ReadLoadReport(strings.NewReader(`{"schema":"retrodns/load-report/v1","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}
