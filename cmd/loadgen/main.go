// Command loadgen drives mixed-endpoint load against a running retrodnsd
// and emits a retrodns/load-report/v1 JSON document: achieved QPS,
// p50/p90/p99/p999 latency, and error/429 counts per endpoint. It is the
// measuring half of the CI load gate — scripts/smoke_load.sh boots a
// daemon, runs loadgen at a fixed request budget, and feeds the report
// through cmd/benchdiff against LOAD_BASELINE.json.
//
// Key selection mirrors production skew: domain keys are the snapshot's
// real domains (fetched from /v1/patterns/* at startup) drawn from a
// zipf distribution, so a hot head of popular domains exercises the
// LRU/prerender path while the tail forces misses.
//
// Two loops:
//   - closed (default): every connection fires its next request as soon
//     as the previous one completes — measures capacity.
//   - open (-qps N): requests are paced at a fixed arrival rate
//     regardless of completions — measures latency under a target load,
//     including queueing delay when the server falls behind.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8080 -duration 10s -connections 8 \
//	  -mix 'domain=60,shortlist=10,funnel=10,patterns=15,healthz=5' \
//	  -warmup 1s -label replicas1 -out load.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"retrodns/internal/obsv"
	"retrodns/internal/report"
	"retrodns/internal/serve"
)

// Loadgen-side metric families, embedded in the load report's metrics
// snapshot.
const (
	metricLoadRequests   = "retrodns_loadgen_requests_total"
	metricLoadErrors     = "retrodns_loadgen_errors_total"
	metricLoadLimited    = "retrodns_loadgen_ratelimited_total"
	metricLoadLatencySec = "retrodns_loadgen_latency_seconds"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	target      string
	duration    time.Duration
	requests    int64
	qps         float64
	connections int
	warmup      time.Duration
	wait        time.Duration
	mix         []mixEntry
	tenants     int
	zipfS       float64
	seed        int64
	label       string
	out         string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target   = fs.String("target", "", "base URL of the daemon, e.g. http://127.0.0.1:8080 (required)")
		duration = fs.Duration("duration", 10*time.Second, "hard cap on the run, warmup included")
		requests = fs.Int64("requests", 0, "stop after this many measured requests (0: run the full -duration)")
		qps      = fs.Float64("qps", 0, "open-loop arrival rate; 0 means closed loop")
		conns    = fs.Int("connections", 8, "concurrent connections (worker goroutines)")
		warmup   = fs.Duration("warmup", time.Second, "discard samples recorded before this cutoff")
		wait     = fs.Duration("wait", 30*time.Second, "how long to wait for /v1/healthz before starting")
		mixStr   = fs.String("mix", "domain=60,shortlist=10,funnel=10,patterns=15,healthz=5", "endpoint mix as name=weight pairs")
		tenants  = fs.Int("tenants", 1, "rotate X-Retrodns-Tenant across this many synthetic tenants")
		zipfS    = fs.Float64("zipf-s", 1.1, "zipf skew for domain-key popularity (>1)")
		seed     = fs.Int64("seed", 1, "RNG seed for key selection")
		label    = fs.String("label", "", "prefix for sample names in the report (e.g. replicas1)")
		out      = fs.String("out", "", "write the load report here (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *target == "" {
		fmt.Fprintln(stderr, "loadgen: -target is required")
		return 2
	}
	mix, err := parseMix(*mixStr)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 2
	}
	cfg := config{
		target: strings.TrimRight(*target, "/"), duration: *duration,
		requests: *requests, qps: *qps, connections: *conns,
		warmup: *warmup, wait: *wait, mix: mix, tenants: *tenants,
		zipfS: *zipfS, seed: *seed, label: *label, out: *out,
	}
	if cfg.connections < 1 {
		cfg.connections = 1
	}
	if cfg.warmup >= cfg.duration {
		fmt.Fprintln(stderr, "loadgen: -warmup must be shorter than -duration")
		return 2
	}

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.connections,
			MaxIdleConnsPerHost: cfg.connections,
		},
	}
	if err := waitHealthy(client, cfg.target, cfg.wait); err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 2
	}
	domains, err := fetchDomains(client, cfg.target)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 2
	}
	if len(domains) == 0 {
		fmt.Fprintln(stderr, "loadgen: snapshot has no domains to query")
		return 2
	}

	rep := drive(client, cfg, domains)

	var w io.Writer = stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := rep.Encode(w); err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 2
	}
	for _, s := range rep.Samples {
		fmt.Fprintf(stderr, "loadgen: %-24s %8d req  %9.1f qps  p50 %8s  p99 %8s  err %d  429 %d\n",
			s.Name, s.Requests, s.QPS,
			time.Duration(s.P50NS).Round(time.Microsecond),
			time.Duration(s.P99NS).Round(time.Microsecond),
			s.Errors, s.RateLimited)
	}
	return 0
}

// mixEntry is one endpoint's share of generated traffic.
type mixEntry struct {
	endpoint string
	weight   int
}

// knownEndpoints are the endpoint names -mix accepts.
var knownEndpoints = map[string]bool{
	"domain": true, "shortlist": true, "funnel": true,
	"patterns": true, "healthz": true,
}

// parseMix parses "domain=60,funnel=10,..." into weighted entries.
// Weights are relative, not percentages; zero-weight entries are
// dropped.
func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, found := strings.Cut(part, "=")
		if !found {
			return nil, fmt.Errorf("mix entry %q: want name=weight", part)
		}
		if !knownEndpoints[name] {
			return nil, fmt.Errorf("mix entry %q: unknown endpoint %q", part, name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		if w == 0 {
			continue
		}
		out = append(out, mixEntry{endpoint: name, weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mix %q selects no endpoints", s)
	}
	return out, nil
}

// pickEndpoint draws one endpoint from the weighted mix.
func pickEndpoint(mix []mixEntry, total int, r *rand.Rand) string {
	n := r.Intn(total)
	for _, m := range mix {
		if n < m.weight {
			return m.endpoint
		}
		n -= m.weight
	}
	return mix[len(mix)-1].endpoint
}

// waitHealthy polls /v1/healthz until the daemon serves a snapshot.
func waitHealthy(client *http.Client, target string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(target + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("target %s not healthy after %s", target, wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetchDomains collects the snapshot's real domain keys from the
// /v1/patterns endpoints, deduplicated in first-seen order so the zipf
// head is stable for a fixed snapshot.
func fetchDomains(client *http.Client, target string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, label := range serve.PatternLabels {
		resp, err := client.Get(target + "/v1/patterns/" + label)
		if err != nil {
			return nil, fmt.Errorf("fetch patterns/%s: %v", label, err)
		}
		var doc struct {
			Domains []string `json:"domains"`
		}
		err = decodeJSON(resp.Body, &doc)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("patterns/%s: %v", label, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("patterns/%s: status %d", label, resp.StatusCode)
		}
		for _, d := range doc.Domains {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	return out, nil
}

// workerStats accumulates one worker's measured (post-warmup) traffic;
// workers never share these, so the hot loop takes no locks beyond the
// HTTP client's own.
type workerStats struct {
	lat     map[string][]int64
	reqs    map[string]int64
	errs    map[string]int64
	limited map[string]int64
}

func newWorkerStats() *workerStats {
	return &workerStats{
		lat:     make(map[string][]int64),
		reqs:    make(map[string]int64),
		errs:    make(map[string]int64),
		limited: make(map[string]int64),
	}
}

// drive runs the load and assembles the report.
func drive(client *http.Client, cfg config, domains []string) report.LoadReport {
	reg := obsv.NewRegistry()
	reg.SetHelp(metricLoadRequests, "Requests loadgen issued, by endpoint.")
	reg.SetHelp(metricLoadErrors, "Non-429 error responses loadgen saw, by endpoint.")
	reg.SetHelp(metricLoadLimited, "429 responses loadgen saw, by endpoint.")
	reg.SetHelp(metricLoadLatencySec, "Request latency loadgen measured, by endpoint.")

	mixTotal := 0
	for _, m := range cfg.mix {
		mixTotal += m.weight
	}

	// Open loop: a pacer feeds arrival ticks at the target rate; workers
	// block on the channel. The buffer holds one second of arrivals so a
	// stalled server shows up as queueing latency, not pacer deadlock.
	var pace chan struct{}
	paceDone := make(chan struct{})
	if cfg.qps > 0 {
		buf := int(cfg.qps)
		if buf < 1 {
			buf = 1
		}
		pace = make(chan struct{}, buf)
		interval := time.Duration(float64(time.Second) / cfg.qps)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-paceDone:
					return
				case <-tick.C:
					select {
					case pace <- struct{}{}:
					default: // arrival dropped: workers saturated and buffer full
					}
				}
			}
		}()
	}

	start := time.Now()
	warmupEnd := start.Add(cfg.warmup)
	deadline := start.Add(cfg.duration)
	var budget atomic.Int64
	budget.Store(cfg.requests)

	stats := make([]*workerStats, cfg.connections)
	var wg sync.WaitGroup
	for w := 0; w < cfg.connections; w++ {
		stats[w] = newWorkerStats()
		wg.Add(1)
		go func(w int, st *workerStats) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			var zipf *rand.Zipf
			if len(domains) > 1 {
				zipf = rand.NewZipf(r, cfg.zipfS, 1, uint64(len(domains)-1))
			}
			n := int64(w)
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				measured := now.After(warmupEnd)
				if measured && cfg.requests > 0 {
					if budget.Add(-1) < 0 {
						return
					}
				}
				if pace != nil {
					select {
					case <-pace:
					case <-time.After(deadline.Sub(now)):
						return
					}
				}
				ep := pickEndpoint(cfg.mix, mixTotal, r)
				path := requestPath(ep, domains, zipf, r)
				req, err := http.NewRequest("GET", cfg.target+path, nil)
				if err != nil {
					continue
				}
				if cfg.tenants > 1 {
					req.Header.Set(serve.TenantHeader, "tenant-"+strconv.FormatInt(n%int64(cfg.tenants), 10))
				}
				n++
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if measured {
						st.reqs[ep]++
						st.errs[ep]++
						reg.Counter(metricLoadRequests, "endpoint", ep).Inc()
						reg.Counter(metricLoadErrors, "endpoint", ep).Inc()
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				elapsed := time.Since(t0)
				if !measured {
					continue
				}
				st.reqs[ep]++
				st.lat[ep] = append(st.lat[ep], elapsed.Nanoseconds())
				reg.Counter(metricLoadRequests, "endpoint", ep).Inc()
				reg.Histogram(metricLoadLatencySec, obsv.DurationBuckets, "endpoint", ep).Observe(elapsed.Seconds())
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					st.limited[ep]++
					reg.Counter(metricLoadLimited, "endpoint", ep).Inc()
				case resp.StatusCode >= 400:
					st.errs[ep]++
					reg.Counter(metricLoadErrors, "endpoint", ep).Inc()
				}
			}
		}(w, stats[w])
	}
	wg.Wait()
	close(paceDone)
	measuredWall := time.Since(warmupEnd)
	if measuredWall <= 0 {
		measuredWall = time.Nanosecond
	}

	merged := newWorkerStats()
	for _, st := range stats {
		for ep, lats := range st.lat {
			merged.lat[ep] = append(merged.lat[ep], lats...)
		}
		for ep, n := range st.reqs {
			merged.reqs[ep] += n
		}
		for ep, n := range st.errs {
			merged.errs[ep] += n
		}
		for ep, n := range st.limited {
			merged.limited[ep] += n
		}
	}

	rep := report.LoadReport{
		Schema: report.LoadReportSchema, Target: cfg.target, Label: cfg.label,
		OpenLoop: cfg.qps > 0, TargetQPS: cfg.qps, Connections: cfg.connections,
		WarmupNS: cfg.warmup.Nanoseconds(), DurationNS: measuredWall.Nanoseconds(),
		Metrics: reg.Snapshot(),
	}
	eps := make([]string, 0, len(merged.reqs))
	for ep := range merged.reqs {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	var allLat []int64
	var allReqs, allErrs, allLimited int64
	for _, ep := range eps {
		rep.Samples = append(rep.Samples, makeSample(cfg.label, ep, merged, measuredWall))
		allLat = append(allLat, merged.lat[ep]...)
		allReqs += merged.reqs[ep]
		allErrs += merged.errs[ep]
		allLimited += merged.limited[ep]
	}
	sort.Slice(allLat, func(i, j int) bool { return allLat[i] < allLat[j] })
	rep.Samples = append(rep.Samples, report.LoadSample{
		Name: sampleName(cfg.label, "all"), Requests: allReqs,
		Errors: allErrs, RateLimited: allLimited,
		QPS:   float64(allReqs) / measuredWall.Seconds(),
		P50NS: percentile(allLat, 0.50), P90NS: percentile(allLat, 0.90),
		P99NS: percentile(allLat, 0.99), P999NS: percentile(allLat, 0.999),
	})
	return rep
}

func makeSample(label, ep string, st *workerStats, wall time.Duration) report.LoadSample {
	lats := st.lat[ep]
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return report.LoadSample{
		Name: sampleName(label, ep), Requests: st.reqs[ep],
		Errors: st.errs[ep], RateLimited: st.limited[ep],
		QPS:   float64(st.reqs[ep]) / wall.Seconds(),
		P50NS: percentile(lats, 0.50), P90NS: percentile(lats, 0.90),
		P99NS: percentile(lats, 0.99), P999NS: percentile(lats, 0.999),
	}
}

func sampleName(label, ep string) string {
	if label == "" {
		return ep
	}
	return label + "/" + ep
}

// requestPath picks the concrete URL path for one request. Domain keys
// follow the zipf draw over the snapshot's real domains; pattern labels
// rotate uniformly.
func requestPath(ep string, domains []string, zipf *rand.Zipf, r *rand.Rand) string {
	switch ep {
	case "domain":
		i := uint64(0)
		if zipf != nil {
			i = zipf.Uint64()
		}
		return "/v1/domain/" + domains[i]
	case "patterns":
		return "/v1/patterns/" + serve.PatternLabels[r.Intn(len(serve.PatternLabels))]
	default:
		return "/v1/" + ep
	}
}

// percentile is the nearest-rank percentile over an ascending-sorted
// slice; 0 for an empty slice.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func decodeJSON(rd io.Reader, v any) error {
	body, err := io.ReadAll(rd)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
