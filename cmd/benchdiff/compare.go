package main

import (
	"fmt"
	"sort"
	"time"

	"retrodns/internal/report"
)

// minGatedStageWall is the noise floor for per-stage timing gates: a
// stage whose baseline wall time is below this is too fast to measure a
// 20% regression reliably from a single run, so it is reported but not
// gated. Benchmark samples have no floor — the testing package already
// averages them over N iterations.
const minGatedStageWall = 50 * time.Millisecond

// Result is the outcome of one baseline comparison.
type Result struct {
	// Failures are gate violations; any entry fails the build.
	Failures []string
	// Info lines narrate what was compared and what moved.
	Info []string
}

// compare applies the gates: funnel counts must match exactly, timings
// (bench ns/op; stage wall times above the noise floor) must not regress
// past tol, and load samples must hold their p99 and QPS.
func compare(baseline, current *report.RunReport, tol float64) Result {
	var res Result
	res.compareFunnel(baseline, current)
	res.compareStages(baseline, current, tol)
	res.compareBench(baseline, current, tol)
	res.compareLoad(baseline, current, tol)
	return res
}

// compareFunnel enforces zero drift across the union of funnel keys —
// plus the quarantine total, which is equally deterministic on the
// seeded world.
func (res *Result) compareFunnel(baseline, current *report.RunReport) {
	if len(current.Funnel) == 0 {
		if len(baseline.Funnel) > 0 {
			res.Info = append(res.Info, "no fresh run report given: funnel drift not checked")
		}
		return
	}
	keys := make(map[string]bool, len(baseline.Funnel))
	for k := range baseline.Funnel {
		keys[k] = true
	}
	for k := range current.Funnel {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	matched := 0
	for _, k := range sorted {
		b, inB := baseline.Funnel[k]
		c, inC := current.Funnel[k]
		switch {
		case !inB:
			res.Failures = append(res.Failures, fmt.Sprintf("funnel %s: new count %d absent from baseline (regenerate the baseline if intended)", k, c))
		case !inC:
			res.Failures = append(res.Failures, fmt.Sprintf("funnel %s: baseline count %d missing from fresh run", k, b))
		case b != c:
			res.Failures = append(res.Failures, fmt.Sprintf("funnel %s: %d -> %d (drift on the seeded world)", k, b, c))
		default:
			matched++
		}
	}
	if baseline.Quarantine.Total != current.Quarantine.Total {
		res.Failures = append(res.Failures, fmt.Sprintf("quarantine total: %d -> %d", baseline.Quarantine.Total, current.Quarantine.Total))
	}
	res.Info = append(res.Info, fmt.Sprintf("funnel: %d/%d counts match", matched, len(sorted)))
}

// compareStages gates wall-time regressions for stages slow enough to
// measure, matching stages by name.
func (res *Result) compareStages(baseline, current *report.RunReport, tol float64) {
	if len(current.Stages) == 0 || len(baseline.Stages) == 0 {
		return
	}
	byName := make(map[string]report.StageReport, len(baseline.Stages))
	for _, s := range baseline.Stages {
		byName[s.Name] = s
	}
	for _, c := range current.Stages {
		b, ok := byName[c.Name]
		if !ok || b.WallNS <= 0 {
			continue
		}
		ratio := float64(c.WallNS) / float64(b.WallNS)
		line := fmt.Sprintf("stage %s: %s -> %s (%+.1f%%)", c.Name,
			time.Duration(b.WallNS).Round(time.Microsecond),
			time.Duration(c.WallNS).Round(time.Microsecond), (ratio-1)*100)
		if ratio > 1+tol && time.Duration(b.WallNS) >= minGatedStageWall {
			res.Failures = append(res.Failures, line)
			continue
		}
		res.Info = append(res.Info, line)
	}
}

// ioBoundBench names benchmark samples whose inner loop is bound by the
// page cache and fault latency rather than the CPU: a single run cannot
// hold the 20% timing gate (observed swings approach 2x on loaded
// runners), so their ns/op gate is widened by ioBoundTolFactor. Their
// allocs/op are deterministic and stay on the normal gate, which is
// what catches real segment-read regressions — an extra copy or a
// reintroduced per-window allocation.
var ioBoundBench = map[string]bool{
	"BenchmarkSegmentRead/mmap":   true,
	"BenchmarkSegmentRead/stream": true,
}

// ioBoundTolFactor widens the timing tolerance for ioBoundBench samples
// (default 20% -> 100%).
const ioBoundTolFactor = 5

// allocTol is the gate for allocs/op regressions. Allocation counts are
// deterministic (no timer noise), but GC-triggered map growth and pool
// warm-up still wobble a few percent across runs; 20% headroom gates real
// regressions — a dropped arena, a reintroduced per-record map — without
// flaking on noise.
const allocTol = 0.20

// compareBench gates ns/op and allocs/op regressions for benchmarks
// present on both sides; benchmarks that appear or disappear are
// informational, since the bench selection legitimately changes across
// PRs. The alloc gate only fires when both sides measured allocations
// (ran with -benchmem), so old baselines without the column stay valid.
func (res *Result) compareBench(baseline, current *report.RunReport, tol float64) {
	if len(current.Bench) == 0 || len(baseline.Bench) == 0 {
		return
	}
	byName := make(map[string]report.BenchSample, len(baseline.Bench))
	for _, s := range baseline.Bench {
		byName[s.Name] = s
	}
	for _, c := range current.Bench {
		b, ok := byName[c.Name]
		if !ok {
			res.Info = append(res.Info, fmt.Sprintf("bench %s: new benchmark, no baseline", c.Name))
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		effTol := tol
		if ioBoundBench[c.Name] {
			effTol = tol * ioBoundTolFactor
		}
		ratio := c.NsPerOp / b.NsPerOp
		line := fmt.Sprintf("bench %s: %.0f -> %.0f ns/op (%+.1f%%)", c.Name, b.NsPerOp, c.NsPerOp, (ratio-1)*100)
		if ratio > 1+effTol {
			res.Failures = append(res.Failures, line)
		} else {
			res.Info = append(res.Info, line)
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
			aratio := c.AllocsPerOp / b.AllocsPerOp
			aline := fmt.Sprintf("bench %s: %.0f -> %.0f allocs/op (%+.1f%%)", c.Name, b.AllocsPerOp, c.AllocsPerOp, (aratio-1)*100)
			if aratio > 1+allocTol {
				res.Failures = append(res.Failures, aline)
				continue
			}
			res.Info = append(res.Info, aline)
		}
	}
}

// compareLoad gates serving load samples by name: p99 latency may not
// regress past tol, and achieved QPS may not fall below baseline ×
// (1 - tol). Unlike bench samples, a baseline load sample missing from
// the fresh run is a failure — the smoke script always emits the same
// labeled sample set, so absence means the measurement silently broke,
// which must not read as a pass.
func (res *Result) compareLoad(baseline, current *report.RunReport, tol float64) {
	if len(baseline.Load) == 0 {
		if len(current.Load) > 0 {
			res.Info = append(res.Info, fmt.Sprintf("load: %d samples, no baseline to gate against", len(current.Load)))
		}
		return
	}
	if len(current.Load) == 0 {
		res.Info = append(res.Info, "no fresh load report given: load gate not checked")
		return
	}
	byName := make(map[string]report.LoadSample, len(current.Load))
	for _, s := range current.Load {
		byName[s.Name] = s
	}
	for _, b := range baseline.Load {
		c, ok := byName[b.Name]
		if !ok {
			res.Failures = append(res.Failures, fmt.Sprintf("load %s: baseline sample missing from fresh run", b.Name))
			continue
		}
		delete(byName, b.Name)
		if b.P99NS > 0 {
			ratio := float64(c.P99NS) / float64(b.P99NS)
			line := fmt.Sprintf("load %s: p99 %s -> %s (%+.1f%%)", b.Name,
				time.Duration(b.P99NS).Round(time.Microsecond),
				time.Duration(c.P99NS).Round(time.Microsecond), (ratio-1)*100)
			if ratio > 1+tol {
				res.Failures = append(res.Failures, line)
			} else {
				res.Info = append(res.Info, line)
			}
		}
		if b.QPS > 0 {
			ratio := c.QPS / b.QPS
			line := fmt.Sprintf("load %s: %.0f -> %.0f qps (%+.1f%%)", b.Name, b.QPS, c.QPS, (ratio-1)*100)
			if ratio < 1-tol {
				res.Failures = append(res.Failures, line)
			} else {
				res.Info = append(res.Info, line)
			}
		}
		if c.Errors > 0 {
			res.Failures = append(res.Failures, fmt.Sprintf("load %s: %d error responses", b.Name, c.Errors))
		}
	}
	for name := range byName {
		res.Info = append(res.Info, fmt.Sprintf("load %s: new sample, no baseline", name))
	}
}

// compareMinSpeedup enforces required improvements: for every
// name=factor pair, the fresh benchmark must run at least factor× faster
// than the committed baseline. A sample missing from either side fails —
// an absent measurement must not satisfy an improvement requirement.
func (res *Result) compareMinSpeedup(baseline, current *report.RunReport, speedups map[string]float64) {
	if len(speedups) == 0 {
		return
	}
	base := make(map[string]report.BenchSample, len(baseline.Bench))
	for _, s := range baseline.Bench {
		base[s.Name] = s
	}
	cur := make(map[string]report.BenchSample, len(current.Bench))
	for _, s := range current.Bench {
		cur[s.Name] = s
	}
	names := make([]string, 0, len(speedups))
	for name := range speedups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		factor := speedups[name]
		b, inB := base[name]
		c, inC := cur[name]
		switch {
		case !inB:
			res.Failures = append(res.Failures, fmt.Sprintf("min-speedup %s: not in baseline", name))
		case !inC:
			res.Failures = append(res.Failures, fmt.Sprintf("min-speedup %s: not in fresh bench output", name))
		case b.NsPerOp <= 0 || c.NsPerOp <= 0:
			res.Failures = append(res.Failures, fmt.Sprintf("min-speedup %s: unusable ns/op (%.0f -> %.0f)", name, b.NsPerOp, c.NsPerOp))
		default:
			got := b.NsPerOp / c.NsPerOp
			line := fmt.Sprintf("min-speedup %s: %.0f -> %.0f ns/op (%.2fx, need %.2fx)", name, b.NsPerOp, c.NsPerOp, got, factor)
			if got < factor {
				res.Failures = append(res.Failures, line)
			} else {
				res.Info = append(res.Info, line)
			}
		}
	}
}
