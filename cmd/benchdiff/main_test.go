package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"retrodns/internal/report"
)

func loadFixture(t *testing.T, name string) *report.RunReport {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := report.ReadRunReport(f)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCompareBaselineAgainstItself(t *testing.T) {
	b := loadFixture(t, "baseline.json")
	res := compare(b, loadFixture(t, "baseline.json"), 0.20)
	if len(res.Failures) != 0 {
		t.Errorf("baseline vs itself failed: %v", res.Failures)
	}
}

// TestCommittedBaselineSelfCompare is the acceptance pin: the committed
// BENCH_BASELINE.json must pass its own gate.
func TestCommittedBaselineSelfCompare(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_BASELINE.json")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := report.ReadRunReport(f)
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	if len(b.Funnel) == 0 || len(b.Bench) == 0 {
		t.Fatalf("committed baseline is hollow: %d funnel counts, %d bench samples", len(b.Funnel), len(b.Bench))
	}
	if res := compare(b, b, 0.20); len(res.Failures) != 0 {
		t.Errorf("committed baseline vs itself failed: %v", res.Failures)
	}
}

// TestSyntheticRegressionFails is the other acceptance pin: a 25% bench
// regression must trip the 20% gate, via the full CLI path.
func TestSyntheticRegressionFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-baseline", filepath.Join("testdata", "baseline.json"),
		"-bench", filepath.Join("testdata", "regressed_bench.txt"),
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	if !strings.Contains(stderr.String(), "BenchmarkAddScan") {
		t.Errorf("failure does not name the regressed benchmark:\n%s", &stderr)
	}
}

func TestHealthyBenchPasses(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-baseline", filepath.Join("testdata", "baseline.json"),
		"-bench", filepath.Join("testdata", "healthy_bench.txt"),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, &stderr)
	}
}

func TestFunnelDriftFails(t *testing.T) {
	b := loadFixture(t, "baseline.json")
	c := loadFixture(t, "baseline.json")
	c.Funnel["hijacked_verdicts"]--
	res := compare(b, c, 0.20)
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "hijacked_verdicts") {
		t.Errorf("failures = %v, want one hijacked_verdicts drift", res.Failures)
	}

	// A vanished count is drift too, not a silent pass.
	c2 := loadFixture(t, "baseline.json")
	delete(c2.Funnel, "maps")
	if res := compare(b, c2, 0.20); len(res.Failures) == 0 {
		t.Error("missing funnel key passed the gate")
	}
}

func TestStageGateRespectsNoiseFloor(t *testing.T) {
	b := loadFixture(t, "baseline.json")

	// classify (200ms baseline) is above the floor: +50% wall fails.
	c := loadFixture(t, "baseline.json")
	c.Stages[0].WallNS = b.Stages[0].WallNS * 3 / 2
	res := compare(b, c, 0.20)
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "classify") {
		t.Errorf("failures = %v, want one classify regression", res.Failures)
	}

	// inspect (1ms baseline) is below minGatedStageWall: even a 10x blowup
	// is reported, not gated — single-run microsecond walls are noise.
	if time.Duration(b.Stages[1].WallNS) >= minGatedStageWall {
		t.Fatal("fixture stage no longer below the noise floor")
	}
	c2 := loadFixture(t, "baseline.json")
	c2.Stages[1].WallNS = b.Stages[1].WallNS * 10
	if res := compare(b, c2, 0.20); len(res.Failures) != 0 {
		t.Errorf("sub-floor stage regression gated: %v", res.Failures)
	}
}

// TestIOBoundBenchWiderGate pins the widened timing tolerance for
// page-cache-bound samples: a +50% ns/op swing on a segment-read
// benchmark is reported, not gated, while the same swing on a CPU-bound
// sample fails, and a genuine blowup past the widened gate still fails.
func TestIOBoundBenchWiderGate(t *testing.T) {
	b := loadFixture(t, "baseline.json")
	b.Bench = append(b.Bench, report.BenchSample{Name: "BenchmarkSegmentRead/mmap", NsPerOp: 1000})
	c := loadFixture(t, "baseline.json")
	c.Bench = append(c.Bench, report.BenchSample{Name: "BenchmarkSegmentRead/mmap", NsPerOp: 1500})
	if res := compare(b, c, 0.20); len(res.Failures) != 0 {
		t.Errorf("+50%% on io-bound bench gated: %v", res.Failures)
	}

	c2 := loadFixture(t, "baseline.json")
	c2.Bench = append(c2.Bench, report.BenchSample{Name: "BenchmarkSegmentRead/mmap", NsPerOp: 2500})
	res := compare(b, c2, 0.20)
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "BenchmarkSegmentRead/mmap") {
		t.Errorf("failures = %v, want one past-widened-gate regression", res.Failures)
	}

	c3 := loadFixture(t, "baseline.json")
	c3.Bench[0].NsPerOp *= 1.5 // CPU-bound sample: +50% still fails
	if res := compare(b, c3, 0.20); len(res.Failures) != 1 {
		t.Errorf("failures = %v, want the cpu-bound regression gated", res.Failures)
	}
}

// TestAllocRegressionFails pins the allocation gate: an allocs/op jump
// past allocTol fails even when ns/op is flat, in-tolerance growth
// passes, and a baseline that never measured allocations cannot gate
// them.
func TestAllocRegressionFails(t *testing.T) {
	b := loadFixture(t, "baseline.json")
	c := loadFixture(t, "baseline.json")
	for i := range b.Bench {
		b.Bench[i].AllocsPerOp = 1000
	}
	for i := range c.Bench {
		c.Bench[i].AllocsPerOp = 1000
	}
	c.Bench[0].AllocsPerOp = 1300 // +30%, ns/op untouched
	res := compare(b, c, 0.20)
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "allocs/op") {
		t.Errorf("failures = %v, want one allocs/op regression", res.Failures)
	}

	c.Bench[0].AllocsPerOp = 1100 // +10%: inside allocTol
	if res := compare(b, c, 0.20); len(res.Failures) != 0 {
		t.Errorf("in-tolerance alloc growth gated: %v", res.Failures)
	}

	for i := range b.Bench {
		b.Bench[i].AllocsPerOp = 0 // baseline predates -benchmem
	}
	c.Bench[0].AllocsPerOp = 90000
	if res := compare(b, c, 0.20); len(res.Failures) != 0 {
		t.Errorf("alloc gate fired without a baseline measurement: %v", res.Failures)
	}
}

func TestQuarantineDriftFails(t *testing.T) {
	b := loadFixture(t, "baseline.json")
	c := loadFixture(t, "baseline.json")
	c.Quarantine.Total = 7
	if res := compare(b, c, 0.20); len(res.Failures) == 0 {
		t.Error("quarantine drift passed the gate")
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no inputs: exit = %d, want 2", code)
	}
	if code := run([]string{"-report", "testdata/does-not-exist.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing report: exit = %d, want 2", code)
	}
}

func loadSamples() []report.LoadSample {
	return []report.LoadSample{
		{Name: "replicas1/all", Requests: 10000, QPS: 5000, P50NS: 200_000, P90NS: 400_000, P99NS: 1_000_000, P999NS: 2_000_000},
		{Name: "replicas1/domain", Requests: 6000, QPS: 3000, P50NS: 220_000, P90NS: 450_000, P99NS: 1_100_000, P999NS: 2_100_000},
	}
}

func TestLoadGate(t *testing.T) {
	b := &report.RunReport{Schema: report.RunReportSchema, Load: loadSamples()}
	c := &report.RunReport{Schema: report.RunReportSchema, Load: loadSamples()}
	if res := compare(b, c, 0.20); len(res.Failures) != 0 {
		t.Fatalf("identical load failed: %v", res.Failures)
	}

	// p99 +25% trips the 20% gate.
	c = &report.RunReport{Schema: report.RunReportSchema, Load: loadSamples()}
	c.Load[0].P99NS = 1_250_000
	res := compare(b, c, 0.20)
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "p99") {
		t.Errorf("p99 regression: failures = %v", res.Failures)
	}

	// QPS -25% trips it too.
	c = &report.RunReport{Schema: report.RunReportSchema, Load: loadSamples()}
	c.Load[1].QPS = 2250
	res = compare(b, c, 0.20)
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "qps") {
		t.Errorf("qps regression: failures = %v", res.Failures)
	}

	// A baseline sample vanishing from the fresh run fails, not passes.
	c = &report.RunReport{Schema: report.RunReportSchema, Load: loadSamples()[:1]}
	if res := compare(b, c, 0.20); len(res.Failures) != 1 {
		t.Errorf("missing load sample: failures = %v", res.Failures)
	}

	// Error responses under load fail regardless of latency.
	c = &report.RunReport{Schema: report.RunReportSchema, Load: loadSamples()}
	c.Load[0].Errors = 3
	if res := compare(b, c, 0.20); len(res.Failures) != 1 {
		t.Errorf("load errors: failures = %v", res.Failures)
	}
}

func TestMinSpeedupGate(t *testing.T) {
	b := &report.RunReport{Schema: report.RunReportSchema,
		Bench: []report.BenchSample{{Name: "BenchmarkServeQuery/hit", N: 1000, NsPerOp: 10000}}}
	fast := &report.RunReport{Schema: report.RunReportSchema,
		Bench: []report.BenchSample{{Name: "BenchmarkServeQuery/hit", N: 1000, NsPerOp: 4000}}}
	slow := &report.RunReport{Schema: report.RunReportSchema,
		Bench: []report.BenchSample{{Name: "BenchmarkServeQuery/hit", N: 1000, NsPerOp: 6000}}}

	var res Result
	res.compareMinSpeedup(b, fast, map[string]float64{"BenchmarkServeQuery/hit": 2.0})
	if len(res.Failures) != 0 {
		t.Errorf("2.5x speedup failed a 2.0x requirement: %v", res.Failures)
	}
	res = Result{}
	res.compareMinSpeedup(b, slow, map[string]float64{"BenchmarkServeQuery/hit": 2.0})
	if len(res.Failures) != 1 {
		t.Errorf("1.67x speedup passed a 2.0x requirement: %v", res.Failures)
	}
	// Missing on either side is a failure, never a silent pass.
	res = Result{}
	res.compareMinSpeedup(b, &report.RunReport{}, map[string]float64{"BenchmarkServeQuery/hit": 2.0})
	if len(res.Failures) != 1 {
		t.Errorf("missing fresh sample passed: %v", res.Failures)
	}
	res = Result{}
	res.compareMinSpeedup(&report.RunReport{}, fast, map[string]float64{"BenchmarkServeQuery/hit": 2.0})
	if len(res.Failures) != 1 {
		t.Errorf("missing baseline sample passed: %v", res.Failures)
	}

	if _, err := parseMinSpeedups([]string{"NoEquals"}); err == nil {
		t.Error("malformed min-speedup accepted")
	}
	if _, err := parseMinSpeedups([]string{"B=0"}); err == nil {
		t.Error("zero factor accepted")
	}
}

// TestLoadCLIRoundTrip drives the full CLI: -update writes a baseline
// with load samples, a matching run passes, a regressed one fails.
func TestLoadCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeLoad := func(name string, p99 int64, qps float64) string {
		path := filepath.Join(dir, name)
		lr := report.LoadReport{
			Schema: report.LoadReportSchema, Target: "http://test", Connections: 4,
			Samples: []report.LoadSample{{Name: "replicas1/all", Requests: 1000, QPS: qps, P50NS: 100_000, P99NS: p99}},
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := lr.Encode(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	good := writeLoad("good.json", 1_000_000, 5000)
	baseline := filepath.Join(dir, "LOAD_BASELINE.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-update", "-baseline", baseline, "-load", good}, &stdout, &stderr); code != 0 {
		t.Fatalf("update exit = %d\nstderr: %s", code, &stderr)
	}
	if code := run([]string{"-baseline", baseline, "-load", good}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-compare exit = %d\nstderr: %s", code, &stderr)
	}
	bad := writeLoad("bad.json", 2_000_000, 5000)
	stderr.Reset()
	if code := run([]string{"-baseline", baseline, "-load", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("regressed load exit = %d, want 1\nstderr: %s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "p99") {
		t.Errorf("failure does not name p99:\n%s", &stderr)
	}
	// Duplicate sample names across -load files are a usage error.
	if code := run([]string{"-baseline", baseline, "-load", good, "-load", good}, &stdout, &stderr); code != 2 {
		t.Errorf("duplicate samples exit = %d, want 2", code)
	}
}

func TestUpdateWritesBaseline(t *testing.T) {
	out := filepath.Join(t.TempDir(), "baseline.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-update", "-baseline", out,
		"-report", filepath.Join("testdata", "baseline.json"),
		"-bench", filepath.Join("testdata", "healthy_bench.txt"),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("update exit = %d\nstderr: %s", code, &stderr)
	}
	// The freshly written baseline gates the same inputs cleanly.
	code = run([]string{
		"-baseline", out,
		"-report", filepath.Join("testdata", "baseline.json"),
		"-bench", filepath.Join("testdata", "healthy_bench.txt"),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("self-compare after update: exit = %d\nstderr: %s", code, &stderr)
	}
}
