// Command benchdiff is the CI performance/correctness gate. It compares a
// fresh machine-readable run report (retrodns -report-json) plus `go test
// -bench` output against the committed baseline (BENCH_BASELINE.json) and
// exits non-zero when either
//
//   - any funnel count drifted — the seeded world is deterministic, so a
//     single-domain difference means the methodology changed, or
//   - a benchmark or a substantial pipeline stage regressed past the
//     tolerance (default 20%).
//
// It also gates serving throughput: repeatable -load flags merge
// cmd/loadgen reports (retrodns/load-report/v1) into the comparison, and
// a sample fails when its p99 regresses past the tolerance or its QPS
// falls below baseline × (1 - tolerance). -min-speedup asserts a
// committed benchmark improved by at least a factor (the zero-copy
// serve-path acceptance gate).
//
// Usage:
//
//	benchdiff -baseline BENCH_BASELINE.json -report run.json -bench bench.txt
//	benchdiff -update -baseline BENCH_BASELINE.json -report run.json -bench bench.txt
//	benchdiff -baseline LOAD_BASELINE.json -load load-r1.json -load load-r2.json
//	benchdiff -baseline BENCH_BASELINE.json -bench bench.txt -min-speedup 'BenchmarkServeQuery/hit=2.0'
//
// Exit codes: 0 gate passed, 1 gate failed, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"retrodns/internal/report"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_BASELINE.json", "committed baseline run report")
		reportPath   = fs.String("report", "", "fresh run report (retrodns -report-json)")
		benchPath    = fs.String("bench", "", "fresh `go test -bench` output to merge into the comparison")
		tolerance    = fs.Float64("tolerance", 0.20, "allowed fractional timing regression before failing")
		update       = fs.Bool("update", false, "write -report (+ -bench/-load) as the new baseline instead of comparing")
	)
	var loadPaths multiFlag
	fs.Var(&loadPaths, "load", "cmd/loadgen report to merge into the comparison (repeatable)")
	var minSpeedups multiFlag
	fs.Var(&minSpeedups, "min-speedup", "require `Bench/name=factor` improvement over the baseline (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *reportPath == "" && *benchPath == "" && len(loadPaths) == 0 {
		fmt.Fprintln(stderr, "benchdiff: need -report, -bench, and/or -load")
		return 2
	}
	speedups, err := parseMinSpeedups(minSpeedups)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	current, err := loadCurrent(*reportPath, *benchPath, loadPaths)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	if *update {
		// The baseline needs the funnel, stage timings, and bench samples;
		// the embedded metrics snapshot is scrape surface, not gate input,
		// and only bloats the committed file.
		current.Metrics = nil
		f, err := os.Create(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		if err := current.Encode(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchdiff: wrote baseline %s (%d funnel counts, %d stages, %d bench samples, %d load samples)\n",
			*baselinePath, len(current.Funnel), len(current.Stages), len(current.Bench), len(current.Load))
		return 0
	}

	baseline, err := loadReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	result := compare(baseline, current, *tolerance)
	result.compareMinSpeedup(baseline, current, speedups)
	for _, line := range result.Info {
		fmt.Fprintln(stdout, "  "+line)
	}
	if len(result.Failures) > 0 {
		for _, line := range result.Failures {
			fmt.Fprintln(stderr, "FAIL: "+line)
		}
		fmt.Fprintf(stderr, "benchdiff: %d gate failure(s) against %s\n", len(result.Failures), *baselinePath)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: ok against %s\n", *baselinePath)
	return 0
}

// loadCurrent assembles the fresh side of the comparison from a run
// report, raw bench output, and/or loadgen reports. Bench samples parsed
// from -bench replace any embedded in the report: the gate should see
// what this run measured, not what the report writer happened to embed.
// Load samples from every -load file are concatenated (the smoke script
// passes one file per replica count, with distinct sample labels).
func loadCurrent(reportPath, benchPath string, loadPaths []string) (*report.RunReport, error) {
	var current *report.RunReport
	if reportPath != "" {
		r, err := loadReport(reportPath)
		if err != nil {
			return nil, err
		}
		current = r
	} else {
		current = &report.RunReport{Schema: report.RunReportSchema}
	}
	if benchPath != "" {
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		samples, err := report.ParseBench(f)
		if err != nil {
			return nil, err
		}
		if len(samples) == 0 {
			return nil, fmt.Errorf("%s: no benchmark samples found", benchPath)
		}
		current.Bench = samples
	}
	if len(loadPaths) > 0 {
		current.Load = nil
		seen := make(map[string]bool)
		for _, path := range loadPaths {
			lr, err := readLoadReport(path)
			if err != nil {
				return nil, err
			}
			if len(lr.Samples) == 0 {
				return nil, fmt.Errorf("%s: no load samples found", path)
			}
			for _, s := range lr.Samples {
				if seen[s.Name] {
					return nil, fmt.Errorf("%s: duplicate load sample %q (use -label to distinguish runs)", path, s.Name)
				}
				seen[s.Name] = true
				current.Load = append(current.Load, s)
			}
		}
	}
	return current, nil
}

func readLoadReport(path string) (*report.LoadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := report.ReadLoadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// parseMinSpeedups parses repeated "BenchmarkName=factor" requirements.
func parseMinSpeedups(specs []string) (map[string]float64, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out := make(map[string]float64, len(specs))
	for _, spec := range specs {
		name, val, found := strings.Cut(spec, "=")
		if !found || name == "" {
			return nil, fmt.Errorf("min-speedup %q: want Benchmark/name=factor", spec)
		}
		var factor float64
		if _, err := fmt.Sscanf(val, "%g", &factor); err != nil || factor <= 0 {
			return nil, fmt.Errorf("min-speedup %q: bad factor %q", spec, val)
		}
		out[name] = factor
	}
	return out, nil
}

func loadReport(path string) (*report.RunReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := report.ReadRunReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}
