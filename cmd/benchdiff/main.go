// Command benchdiff is the CI performance/correctness gate. It compares a
// fresh machine-readable run report (retrodns -report-json) plus `go test
// -bench` output against the committed baseline (BENCH_BASELINE.json) and
// exits non-zero when either
//
//   - any funnel count drifted — the seeded world is deterministic, so a
//     single-domain difference means the methodology changed, or
//   - a benchmark or a substantial pipeline stage regressed past the
//     tolerance (default 20%).
//
// Usage:
//
//	benchdiff -baseline BENCH_BASELINE.json -report run.json -bench bench.txt
//	benchdiff -update -baseline BENCH_BASELINE.json -report run.json -bench bench.txt
//
// Exit codes: 0 gate passed, 1 gate failed, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"retrodns/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_BASELINE.json", "committed baseline run report")
		reportPath   = fs.String("report", "", "fresh run report (retrodns -report-json)")
		benchPath    = fs.String("bench", "", "fresh `go test -bench` output to merge into the comparison")
		tolerance    = fs.Float64("tolerance", 0.20, "allowed fractional timing regression before failing")
		update       = fs.Bool("update", false, "write -report (+ -bench) as the new baseline instead of comparing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *reportPath == "" && *benchPath == "" {
		fmt.Fprintln(stderr, "benchdiff: need -report and/or -bench")
		return 2
	}

	current, err := loadCurrent(*reportPath, *benchPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	if *update {
		// The baseline needs the funnel, stage timings, and bench samples;
		// the embedded metrics snapshot is scrape surface, not gate input,
		// and only bloats the committed file.
		current.Metrics = nil
		f, err := os.Create(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		if err := current.Encode(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchdiff: wrote baseline %s (%d funnel counts, %d stages, %d bench samples)\n",
			*baselinePath, len(current.Funnel), len(current.Stages), len(current.Bench))
		return 0
	}

	baseline, err := loadReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	result := compare(baseline, current, *tolerance)
	for _, line := range result.Info {
		fmt.Fprintln(stdout, "  "+line)
	}
	if len(result.Failures) > 0 {
		for _, line := range result.Failures {
			fmt.Fprintln(stderr, "FAIL: "+line)
		}
		fmt.Fprintf(stderr, "benchdiff: %d gate failure(s) against %s\n", len(result.Failures), *baselinePath)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: ok against %s\n", *baselinePath)
	return 0
}

// loadCurrent assembles the fresh side of the comparison from a run
// report and/or raw bench output. Bench samples parsed from -bench
// replace any embedded in the report: the gate should see what this run
// measured, not what the report writer happened to embed.
func loadCurrent(reportPath, benchPath string) (*report.RunReport, error) {
	var current *report.RunReport
	if reportPath != "" {
		r, err := loadReport(reportPath)
		if err != nil {
			return nil, err
		}
		current = r
	} else {
		current = &report.RunReport{Schema: report.RunReportSchema}
	}
	if benchPath != "" {
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		samples, err := report.ParseBench(f)
		if err != nil {
			return nil, err
		}
		if len(samples) == 0 {
			return nil, fmt.Errorf("%s: no benchmark samples found", benchPath)
		}
		current.Bench = samples
	}
	return current, nil
}

func loadReport(path string) (*report.RunReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := report.ReadRunReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}
