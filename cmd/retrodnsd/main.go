// Command retrodnsd is the serving daemon: it ingests a simulated study,
// runs the analysis pipeline, and serves the results over a versioned
// HTTP API while the study replays underneath.
//
// The read side never blocks on the write side. Each pipeline run is
// folded into an immutable snapshot that is published with one atomic
// pointer swap; every request reads exactly one snapshot, so responses
// are internally consistent even while -follow ingest drives generation
// after generation through the incremental engine.
//
//	retrodnsd -listen :8080                  # analyze once, serve forever
//	retrodnsd -listen :8080 -follow          # re-analyze and swap after every scan
//	retrodnsd -data-dir d -scans-csv s.csv   # durable CSV ingest with warm restarts
//	retrodnsd -listen :8080 -replicas 4      # consistent-hash routing over 4 engines
//	curl localhost:8080/v1/healthz
//	curl localhost:8080/v1/funnel
//	curl localhost:8080/v1/shortlist
//	curl localhost:8080/v1/patterns/T1
//	curl localhost:8080/v1/domain/login.treasury.gov.aa
//
// Endpoints: /v1/domain/{name}, /v1/shortlist, /v1/funnel,
// /v1/patterns/{label}, /v1/healthz — plus /metrics and /debug/vars from
// the shared observability registry on the same listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"retrodns/internal/core"
	"retrodns/internal/obsv"
	"retrodns/internal/pdns"
	"retrodns/internal/report"
	"retrodns/internal/scanner"
	"retrodns/internal/segment"
	"retrodns/internal/serve"
	"retrodns/internal/simtime"
	"retrodns/internal/wal"
	"retrodns/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "retrodnsd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen      = flag.String("listen", ":8080", "serve the /v1 query API (and /metrics) on this address")
		metricsAddr = flag.String("metrics-addr", "", "also serve /metrics and /debug/vars on this side address (they are always on -listen)")
		seed        = flag.Int64("seed", 1, "world generation seed")
		stable      = flag.Int("stable", 400, "benign stable-domain population")
		noCampaigns = flag.Bool("no-campaigns", false, "disable the attack campaigns")
		coverage    = flag.Float64("pdns-coverage", 0.85, "passive-DNS sensor coverage (0..1]")
		workers     = flag.Int("workers", 0, "pipeline worker-pool size (0 = GOMAXPROCS)")
		strict      = flag.Bool("strict", false, "treat any record the ingest gate would quarantine as a fatal error")
		follow      = flag.Bool("follow", false, "ingest scan-by-scan, re-analyzing and swapping the snapshot after each scan")
		interval    = flag.Duration("scan-interval", 0, "pause between scans in -follow mode (0 = replay as fast as possible)")
		lruSize     = flag.Int("lru", serve.DefaultLRUSize, "rendered-response cache entries per replica (negative disables)")
		rate        = flag.Float64("rate", 0, "token-bucket request rate limit per second (0 disables)")
		burst       = flag.Int("burst", 0, "rate-limiter burst capacity (defaults to 1 when -rate is set)")
		replicas    = flag.Int("replicas", 1, "serving engine replicas behind consistent-hash routing")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant request rate limit per second, keyed on "+serve.TenantHeader+" (0 disables)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant burst capacity (defaults to 1 when -tenant-rate is set)")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-request handler timeout")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window on SIGTERM/SIGINT")
		reportJSON  = flag.String("report-json", "", "write the run report (with serve section) here on shutdown ('-' for stdout)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this side address (off by default; never on -listen)")
		dataDir     = flag.String("data-dir", "", "durable state directory (WAL + snapshots); enables warm restarts")
		scansCSV    = flag.String("scans-csv", "", "ingest scan records from this CSV file instead of simulating a world")
		shards      = flag.Int("shards", scanner.DefaultShards, "dataset shard count for CSV ingest (a recovered snapshot's own count wins)")
		snapEvery   = flag.Int("snapshot-every", 4, "appends between automatic snapshots in -data-dir mode")
		spillDir    = flag.String("spill-dir", "", "segment-store directory for the out-of-core corpus (enables cold-shard spill; -data-dir mode only)")
		memBudgetMB = flag.Int("mem-budget-mb", -1, "resident corpus budget in MiB: <0 unlimited, 0 spill every frozen shard, >0 ceiling (requires -spill-dir)")
		spillMode   = flag.String("spill-read-mode", "auto", "how spilled segments are read: auto, mmap, or stream")
	)
	flag.Parse()
	if *dataDir != "" && *scansCSV == "" {
		return fmt.Errorf("-data-dir requires -scans-csv (durable mode ingests a CSV feed)")
	}
	var spill *scanner.SpillOptions
	if *spillDir != "" {
		if *dataDir == "" {
			return fmt.Errorf("-spill-dir requires -data-dir (the segment store lives beside the WAL)")
		}
		mode, err := segment.ParseMode(*spillMode)
		if err != nil {
			return err
		}
		budget := int64(-1)
		if *memBudgetMB >= 0 {
			budget = int64(*memBudgetMB) << 20
		}
		spill = &scanner.SpillOptions{Dir: *spillDir, BudgetBytes: budget, Mode: mode}
	} else if *memBudgetMB >= 0 {
		return fmt.Errorf("-mem-budget-mb requires -spill-dir")
	}

	metrics := obsv.NewRegistry()
	opts := serve.Options{
		LRUSize:          lruFlag(*lruSize),
		RatePerSec:       *rate,
		Burst:            *burst,
		TenantRatePerSec: *tenantRate,
		TenantBurst:      *tenantBurst,
	}
	// -replicas 1 serves a bare engine (no routing layer on the hot
	// path); anything higher puts N engines behind the consistent-hash
	// router, which also exposes the /v1/replicas fanout.
	var pub snapshotPublisher = serve.NewEngine(opts)
	if *replicas > 1 {
		pub = serve.NewRouter(*replicas, opts)
		fmt.Fprintf(os.Stderr, "routing across %d replicas\n", *replicas)
	}
	pub.SetMetrics(metrics)

	// One mux, one listener: the query API and the scrape surface share
	// -listen; -metrics-addr adds an optional side listener for setups
	// that keep scrapes off the serving port.
	mux := http.NewServeMux()
	mux.Handle("/v1/", pub.Handler())
	metrics.Mount(mux)
	srv := &http.Server{
		Handler:           http.TimeoutHandler(mux, *reqTimeout, `{"error":"request timed out"}`+"\n"),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	fmt.Fprintf(os.Stderr, "serving /v1 API on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr <- err
		}
		close(serveErr)
	}()

	var stopPprof func(context.Context) error
	if *pprofAddr != "" {
		bound, stop, err := servePprof(*pprofAddr)
		if err != nil {
			return err
		}
		stopPprof = stop
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", bound)
	}

	var stopMetrics func(context.Context) error
	if *metricsAddr != "" {
		bound, stop, err := obsv.ListenAndServeMetrics(*metricsAddr, metrics, os.Stderr)
		if err != nil {
			return err
		}
		stopMetrics = stop
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", bound)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancel()

	// Ingest on the main goroutine: the daemon serves whatever snapshot is
	// current while this loop advances it.
	var (
		res *core.Result
		ds  *scanner.Dataset
		dur *durable
	)
	if *scansCSV != "" {
		res, ds, dur, err = ingestCSV(ctx, pub, metrics, csvConfig{
			path: *scansCSV, dataDir: *dataDir, shards: *shards,
			snapshotEvery: *snapEvery, workers: *workers, strict: *strict,
			follow: *follow, interval: *interval, spill: spill,
		})
	} else {
		res, ds, err = ingest(ctx, pub, metrics, ingestConfig{
			seed: *seed, stable: *stable, campaigns: !*noCampaigns,
			coverage: *coverage, workers: *workers, strict: *strict,
			follow: *follow, interval: *interval,
		})
	}
	if err != nil {
		if dur != nil {
			dur.Close()
		}
		return err
	}

	// Serve until signalled (or until the HTTP server dies on its own).
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "shutdown signal received, draining...")
	case err := <-serveErr:
		if err != nil {
			return fmt.Errorf("http server: %w", err)
		}
	}

	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	if stopMetrics != nil {
		if err := stopMetrics(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "metrics drain:", err)
		}
	}
	if stopPprof != nil {
		if err := stopPprof(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "pprof drain:", err)
		}
	}

	// The durable store closes inside the drain window: Close flushes the
	// WAL tail and fsyncs a manifest with the final generation, so a clean
	// SIGTERM loses nothing.
	if dur != nil {
		if err := dur.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "wal close:", err)
		}
	}

	if *reportJSON != "" && res != nil {
		if err := writeRunReport(*reportJSON, res, ds, metrics, pub, *replicas, dur); err != nil {
			return fmt.Errorf("report-json: %w", err)
		}
	}
	return nil
}

// servePprof starts the profiling side listener: its own mux carrying only
// the net/http/pprof handlers, so the profiler surface never shares a port
// with the query API or the metrics scrape — the same shape as
// obsv.ListenAndServeMetrics. Returns the bound address and a shutdown
// function.
func servePprof(addr string) (string, func(context.Context) error, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("pprof listen %s: %w", addr, err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "pprof server:", err)
		}
	}()
	return ln.Addr().String(), srv.Shutdown, nil
}

// snapshotPublisher is what the ingest loops need from the serving
// layer: somewhere to install each generation and the stats/handler
// surface around it. *serve.Engine (one replica) and *serve.Router
// (consistent-hash fanout) both satisfy it, so ingest and the shutdown
// report are agnostic to -replicas.
type snapshotPublisher interface {
	Publish(*serve.Snapshot)
	Current() *serve.Snapshot
	Handler() http.Handler
	SetMetrics(*obsv.Registry)
	Stats() serve.Stats
}

// lruFlag maps the -lru flag onto serve.Options.LRUSize, where 0 means
// "use the default" rather than "disabled" — a user passing -lru 0 wants
// caching off.
func lruFlag(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

type ingestConfig struct {
	seed      int64
	stable    int
	campaigns bool
	coverage  float64
	workers   int
	strict    bool
	follow    bool
	interval  time.Duration
}

// ingest builds the world and drives it through the pipeline, publishing
// a snapshot per generation (-follow) or once for the whole corpus. It
// returns the final result and dataset for the shutdown report; a nil
// result means the context was cancelled before the first analysis.
func ingest(ctx context.Context, pub snapshotPublisher, metrics *obsv.Registry, cfg ingestConfig) (*core.Result, *scanner.Dataset, error) {
	wcfg := world.DefaultConfig()
	wcfg.Seed = cfg.seed
	wcfg.StableDomains = cfg.stable
	wcfg.TransitionDomains = cfg.stable * 3 / 100
	wcfg.NoisyDomains = max(2, cfg.stable/250)
	wcfg.PDNSCoverage = cfg.coverage
	wcfg.Campaigns = cfg.campaigns

	fmt.Fprintf(os.Stderr, "building world (seed=%d stable=%d campaigns=%v)...\n", wcfg.Seed, wcfg.StableDomains, wcfg.Campaigns)
	w := world.New(wcfg)

	if !cfg.follow {
		ds := w.Run()
		if err := worldErrors(w); err != nil {
			return nil, nil, err
		}
		if q := ds.Quarantine(); q.Total > 0 {
			fmt.Fprintln(os.Stderr, q)
			if cfg.strict {
				return nil, nil, fmt.Errorf("strict: refusing to analyze a partially-malformed feed")
			}
		}
		ds.SetMetrics(metrics)
		w.PDNSDB.SetMetrics(metrics)
		w.CT.SetMetrics(metrics)
		pipe := newPipeline(w, ds, metrics, cfg.workers)
		res := pipe.Run()
		pub.Publish(serve.BuildSnapshot(res, ds, snapshotStamp(ds)))
		fmt.Fprintf(os.Stderr, "published snapshot gen=%d hijacked=%d targeted=%d\n",
			ds.Generation(), len(res.Hijacked), len(res.Targeted))
		return res, ds, nil
	}

	w.RunClock()
	if err := worldErrors(w); err != nil {
		return nil, nil, err
	}
	sc := w.Scanner()
	ds := scanner.NewDataset()
	ds.SetStrict(cfg.strict)
	ds.SetMetrics(metrics)
	w.PDNSDB.SetMetrics(metrics)
	w.CT.SetMetrics(metrics)
	pipe := newPipeline(w, ds, metrics, cfg.workers)

	var res *core.Result
	for _, date := range w.ScanDates() {
		select {
		case <-ctx.Done():
			return res, ds, nil
		default:
		}
		if err := ds.Append(date, sc.ScanWeek(date)); err != nil {
			return res, ds, fmt.Errorf("ingest %s: %w", date, err)
		}
		res = pipe.Run()
		pub.Publish(serve.BuildSnapshot(res, ds, snapshotStamp(ds)))
		fmt.Fprintf(os.Stderr, "scan %s: published gen=%d dirty=%d hijacked=%d targeted=%d\n",
			date, ds.Generation(), res.Stats.DirtyCells, len(res.Hijacked), len(res.Targeted))
		if cfg.interval > 0 {
			select {
			case <-ctx.Done():
				return res, ds, nil
			case <-time.After(cfg.interval):
			}
		}
	}
	if q := ds.Quarantine(); q.Total > 0 {
		fmt.Fprintln(os.Stderr, q)
	}
	fmt.Fprintln(os.Stderr, "study replay complete; serving final snapshot")
	return res, ds, nil
}

// snapshotStamp derives the published snapshot's Built instant from the
// data itself — the latest ingested scan date — rather than the wall
// clock, so two daemons serving the same generation publish identical
// snapshots whether or not one of them restarted along the way.
func snapshotStamp(ds *scanner.Dataset) time.Time {
	if date, ok := ds.LatestScanDate(); ok {
		return date.Time()
	}
	return simtime.StudyStart.Time()
}

type csvConfig struct {
	path          string
	dataDir       string
	shards        int
	snapshotEvery int
	workers       int
	strict        bool
	follow        bool
	interval      time.Duration
	spill         *scanner.SpillOptions
}

// durable bundles the WAL store with what Open recovered, for the
// shutdown path and the report's WAL section.
type durable struct {
	store *wal.Store
	rec   *wal.Recovery
}

func (d *durable) Close() error {
	if d == nil || d.store == nil {
		return nil
	}
	return d.store.Close()
}

// followPoll is how long -follow CSV ingest sleeps when the feed has no
// complete new data.
const followPoll = 100 * time.Millisecond

// ingestCSV feeds scan records from a CSV file through the durable store
// (when -data-dir is set) into the pipeline, publishing a snapshot per
// appended scan. On a warm boot it first republishes the recovered
// generation, so the API answers from the pre-crash state before the feed
// advances it. There is no simulated world behind a CSV feed, so the
// auxiliary sources are empty — same shape as retrodns -synth.
func ingestCSV(ctx context.Context, pub snapshotPublisher, metrics *obsv.Registry, cfg csvConfig) (*core.Result, *scanner.Dataset, *durable, error) {
	dur := &durable{}
	var ds *scanner.Dataset
	cache := core.NewClassifyCache()
	if cfg.dataDir != "" {
		store, rec, err := wal.Open(wal.Options{
			Dir: cfg.dataDir, Shards: cfg.shards,
			SnapshotEvery: cfg.snapshotEvery, Metrics: metrics,
			Spill: cfg.spill,
		})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("wal open %s: %w", cfg.dataDir, err)
		}
		dur.store, dur.rec = store, rec
		ds, cache = rec.Dataset, rec.Cache
		if rec.Warm {
			fmt.Fprintf(os.Stderr, "recovered gen=%d (snapshot=%q replayed=%d faults=%v)\n",
				rec.Generation, rec.FromSnapshot, rec.ReplayedBatches, rec.Faults)
		}
	} else {
		ds = scanner.NewDatasetShards(cfg.shards)
	}
	ds.SetStrict(cfg.strict)
	ds.SetMetrics(metrics)
	if dur.rec != nil && dur.rec.Warm {
		ds.AccountRestored()
	}
	pipe := &core.Pipeline{
		Params: core.DefaultParams(), Dataset: ds, PDNS: pdns.NewDB(),
		Workers: cfg.workers, Cache: cache, Metrics: metrics,
	}

	var res *core.Result
	if ds.Frozen() {
		// Warm boot: serve the recovered generation before reading a byte
		// of feed.
		res = pipe.Run()
		pub.Publish(serve.BuildSnapshot(res, ds, snapshotStamp(ds)))
		fmt.Fprintf(os.Stderr, "published recovered snapshot gen=%d\n", ds.Generation())
	}

	f, err := os.Open(cfg.path)
	if err != nil {
		return res, ds, dur, err
	}
	defer f.Close()
	feeder := wal.NewFeeder(f, ds, dur.store, metrics)
	for {
		select {
		case <-ctx.Done():
			return res, ds, dur, nil
		default:
		}
		date, appended, err := feeder.Tick()
		if err != nil {
			return res, ds, dur, fmt.Errorf("ingest %s: %w", cfg.path, err)
		}
		if !appended {
			if !cfg.follow {
				// Bounded input: a torn final line is quarantined, not held.
				feeder.Finish()
				break
			}
			select {
			case <-ctx.Done():
				return res, ds, dur, nil
			case <-time.After(followPoll):
			}
			continue
		}
		res = pipe.Run()
		pub.Publish(serve.BuildSnapshot(res, ds, snapshotStamp(ds)))
		fmt.Fprintf(os.Stderr, "scan %s: published gen=%d dirty=%d hijacked=%d targeted=%d\n",
			date, ds.Generation(), res.Stats.DirtyCells, len(res.Hijacked), len(res.Targeted))
		if dur.store != nil {
			if _, err := dur.store.MaybeSnapshot(); err != nil {
				return res, ds, dur, fmt.Errorf("snapshot: %w", err)
			}
		}
		// The pause applies in bounded mode too: it is what gives the chaos
		// harness a window to kill the daemon mid-ingest.
		if cfg.interval > 0 {
			select {
			case <-ctx.Done():
				return res, ds, dur, nil
			case <-time.After(cfg.interval):
			}
		}
	}
	if dur.store != nil {
		if err := dur.store.Snapshot(); err != nil {
			return res, ds, dur, fmt.Errorf("final snapshot: %w", err)
		}
	}
	if q := ds.Quarantine(); q.Total > 0 {
		fmt.Fprintln(os.Stderr, q)
	}
	fmt.Fprintln(os.Stderr, "csv feed complete; serving final snapshot")
	return res, ds, dur, nil
}

// newPipeline wires the analysis pipeline the same way both CLIs do.
func newPipeline(w *world.World, ds *scanner.Dataset, metrics *obsv.Registry, workers int) *core.Pipeline {
	return &core.Pipeline{
		Params: core.DefaultParams(), Dataset: ds, Meta: w.Meta,
		PDNS: w.PDNSDB, CT: w.CT, DNSSEC: w.SecLog,
		Workers: workers, Cache: core.NewClassifyCache(),
		Metrics: metrics,
	}
}

// worldErrors folds world-generation failures into one error.
func worldErrors(w *world.World) error {
	if len(w.Errors) == 0 {
		return nil
	}
	for _, err := range w.Errors {
		fmt.Fprintf(os.Stderr, "world error: %v\n", err)
	}
	return fmt.Errorf("world generation failed with %d errors", len(w.Errors))
}

// writeRunReport emits the run report with the serving section attached —
// the only producer that fills it in — plus, in durable mode, the WAL
// section describing what boot recovered.
func writeRunReport(path string, res *core.Result, ds *scanner.Dataset, metrics *obsv.Registry, pub snapshotPublisher, replicas int, dur *durable) error {
	doc := report.BuildRunReport(res, ds.Quarantine(), metrics)
	st := pub.Stats()
	doc.Serve = &report.ServeSection{
		Generation: st.Generation,
		Swaps:      st.Swaps,
		Replicas:   replicas,
		Requests:   st.Requests,
	}
	if dur != nil && dur.rec != nil {
		doc.WAL = &report.WALSection{
			Warm:                dur.rec.Warm,
			FromSnapshot:        dur.rec.FromSnapshot,
			RecoveredGeneration: dur.rec.Generation,
			ReplayedBatches:     dur.rec.ReplayedBatches,
			Generation:          ds.Generation(),
		}
		if len(dur.rec.Faults) > 0 {
			doc.WAL.Quarantined = dur.rec.Faults
		}
	}
	if path == "-" {
		return doc.Encode(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := doc.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
