// Command chaos is the durability harness for retrodnsd: it generates a
// deterministic scans.csv corpus, records an uninterrupted baseline run,
// then drives fault campaigns — kill mid-ingest, truncate-mid-write,
// garble-a-byte, duplicate-append, graceful-drain kill, clock-skewed rows,
// torn CSV tail — against live daemons and asserts three invariants on
// each recovery:
//
//  1. quarantine counters account for every injected fault, by reason;
//  2. generations never mix — every response's generation header matches
//     its body, and the recovered daemon converges on the baseline's
//     final generation;
//  3. recovered state is byte-identical to the uninterrupted run — the
//     canonical run report and every sampled /v1 document compare equal.
//
// Exit status is nonzero if any campaign fails; -report-json emits a
// machine-readable verdict per campaign.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"retrodns/internal/report"
	"retrodns/internal/scanner"
	"retrodns/internal/simtime"
	"retrodns/internal/synth"
	"retrodns/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

type config struct {
	bin       string
	workdir   string
	domains   int
	scans     int
	seed      int64
	shards    int
	interval  time.Duration
	killAtGen uint64
	warmDoms  int
	warmRatio float64
	verbose   bool
}

type campaignResult struct {
	Name    string   `json:"name"`
	Pass    bool     `json:"pass"`
	Details []string `json:"details,omitempty"`
}

type chaosReport struct {
	Schema    string           `json:"schema"`
	FinalGen  uint64           `json:"final_generation"`
	Campaigns []campaignResult `json:"campaigns"`
	Pass      bool             `json:"pass"`
}

func run() error {
	cfg := config{}
	flag.StringVar(&cfg.bin, "retrodnsd", "", "path to the retrodnsd binary (required)")
	flag.StringVar(&cfg.workdir, "workdir", "", "working directory (default: a temp dir)")
	flag.IntVar(&cfg.domains, "domains", 300, "synth corpus size")
	flag.IntVar(&cfg.scans, "scans", 5, "synth scan count")
	flag.Int64Var(&cfg.seed, "seed", 11, "synth seed")
	flag.IntVar(&cfg.shards, "shards", 4, "dataset shards")
	flag.DurationVar(&cfg.interval, "scan-interval", 150*time.Millisecond, "daemon pause between scans (the kill window)")
	var killAt uint64
	flag.Uint64Var(&killAt, "kill-at-gen", 3, "kill once healthz reports at least this generation")
	flag.IntVar(&cfg.warmDoms, "warm-domains", 0, "also run the warm-restart speedup gate over a corpus this large (0 = skip)")
	flag.Float64Var(&cfg.warmRatio, "warm-speedup", 5.0, "minimum warm/cold time-to-healthy ratio for the speedup gate")
	flag.BoolVar(&cfg.verbose, "v", false, "echo daemon stderr")
	reportPath := flag.String("report-json", "", "write the chaos verdict here ('-' for stdout)")
	flag.Parse()
	cfg.killAtGen = killAt
	if cfg.bin == "" {
		return fmt.Errorf("-retrodnsd is required")
	}
	if cfg.workdir == "" {
		dir, err := os.MkdirTemp("", "retrodns-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.workdir = dir
	} else if err := os.MkdirAll(cfg.workdir, 0o755); err != nil {
		return err
	}

	h := &harness{cfg: cfg}
	if err := h.writeCorpus(); err != nil {
		return err
	}
	if err := h.baseline(); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}

	campaigns := []struct {
		name string
		run  func(*campaign) error
	}{
		{"kill", h.campaignKill},
		{"truncate", h.campaignTruncate},
		{"garble", h.campaignGarble},
		{"duplicate", h.campaignDuplicate},
		{"drain", h.campaignDrain},
		{"skew", h.campaignSkew},
		{"tail", h.campaignTail},
	}
	out := chaosReport{Schema: "retrodns/chaos-report/v1", FinalGen: h.finalGen, Pass: true}
	for _, c := range campaigns {
		cam := &campaign{h: h, name: c.name, dir: filepath.Join(cfg.workdir, c.name)}
		err := c.run(cam)
		if err != nil {
			cam.failf("%v", err)
		}
		res := campaignResult{Name: c.name, Pass: len(cam.failures) == 0, Details: cam.failures}
		out.Campaigns = append(out.Campaigns, res)
		status := "PASS"
		if !res.Pass {
			status = "FAIL"
			out.Pass = false
		}
		fmt.Fprintf(os.Stderr, "campaign %-10s %s\n", c.name, status)
		for _, d := range cam.failures {
			fmt.Fprintf(os.Stderr, "  - %s\n", d)
		}
	}
	if cfg.warmDoms > 0 {
		cam := &campaign{h: h, name: "warmspeed", dir: filepath.Join(cfg.workdir, "warmspeed")}
		if err := h.campaignWarmSpeed(cam); err != nil {
			cam.failf("%v", err)
		}
		res := campaignResult{Name: "warmspeed", Pass: len(cam.failures) == 0, Details: cam.failures}
		out.Campaigns = append(out.Campaigns, res)
		if !res.Pass {
			out.Pass = false
		}
		status := "PASS"
		if !res.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "campaign %-10s %s\n", "warmspeed", status)
		for _, d := range cam.failures {
			fmt.Fprintf(os.Stderr, "  - %s\n", d)
		}
	}

	if *reportPath != "" {
		if err := writeJSON(*reportPath, out); err != nil {
			return err
		}
	}
	if !out.Pass {
		return fmt.Errorf("%d campaign(s) failed", countFailed(out.Campaigns))
	}
	fmt.Fprintln(os.Stderr, "all campaigns passed")
	return nil
}

func countFailed(cs []campaignResult) int {
	n := 0
	for _, c := range cs {
		if !c.Pass {
			n++
		}
	}
	return n
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// docPaths are the /v1 documents sampled for byte comparison. The domain
// endpoint is filled in once the corpus names are known.
var docPaths = []string{"/v1/funnel", "/v1/shortlist", "/v1/patterns/T1", "/v1/patterns/stable"}

type harness struct {
	cfg config

	csvPath   string
	domain    string // a corpus domain for /v1/domain sampling
	finalGen  uint64
	lastScan  string
	canonical []byte            // canonical baseline run report encoding
	docs      map[string][]byte // baseline /v1 documents
}

// writeCorpus renders the synth corpus to scans.csv once; campaigns that
// need a damaged feed copy and mutate it.
func (h *harness) writeCorpus() error {
	h.csvPath = filepath.Join(h.cfg.workdir, "scans.csv")
	g := synth.New(synth.Config{Domains: h.cfg.domains, Seed: h.cfg.seed, Scans: h.cfg.scans})
	f, err := os.Create(h.csvPath)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, strings.Join(scanner.ScanCSVHeader, ","))
	dates := g.ScanDates()
	for _, date := range dates {
		g.EmitScan(date, func(r *scanner.Record) {
			if h.domain == "" && len(r.Cert.SANs) > 0 {
				h.domain = string(r.Cert.SANs[0])
			}
			fmt.Fprintln(w, strings.Join(scanner.FormatScanRow(r), ","))
		})
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	h.finalGen = uint64(len(dates)) + 1 // first Append freezes gen 1, publishes 2
	h.lastScan = dates[len(dates)-1].String()
	return nil
}

func (h *harness) daemonArgs(dir, reportJSON string, extra ...string) []string {
	args := []string{
		"-scans-csv", h.csvPath,
		"-data-dir", dir,
		"-shards", fmt.Sprint(h.cfg.shards),
		"-report-json", reportJSON,
	}
	return append(args, extra...)
}

// baseline runs one uninterrupted daemon over the corpus and records the
// canonical report and /v1 documents every campaign must reproduce.
func (h *harness) baseline() error {
	dir := filepath.Join(h.cfg.workdir, "baseline")
	rp := filepath.Join(dir, "report.json")
	d, err := h.start(h.daemonArgs(filepath.Join(dir, "data"), rp,
		"-scan-interval", h.cfg.interval.String(), "-snapshot-every", "2"))
	if err != nil {
		return err
	}
	if err := h.awaitFinal(d); err != nil {
		d.kill()
		return err
	}
	h.docs = make(map[string][]byte)
	for _, p := range h.docPathsAll() {
		body, _, err := h.fetch(d, p)
		if err != nil {
			d.kill()
			return err
		}
		h.docs[p] = body
	}
	if err := d.stopGracefully(); err != nil {
		return err
	}
	doc, err := readRunReport(rp)
	if err != nil {
		return err
	}
	h.canonical, err = canonicalBytes(doc)
	return err
}

func (h *harness) docPathsAll() []string {
	return append(append([]string(nil), docPaths...), "/v1/domain/"+h.domain)
}

func (h *harness) awaitFinal(d *daemon) error {
	return d.pollHealth(60*time.Second, func(hd healthDoc) bool {
		return hd.Generation == h.finalGen && hd.LastScan == h.lastScan
	})
}

func readRunReport(path string) (*report.RunReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return report.ReadRunReport(f)
}

func canonicalBytes(doc *report.RunReport) ([]byte, error) {
	var buf bytes.Buffer
	if err := doc.Canonical().Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// metricValue sums report metric samples matching name (and, when set,
// one label pair).
func metricValue(doc *report.RunReport, name, labelKey, labelVal string) int64 {
	var sum int64
	for _, s := range doc.Metrics {
		if s.Name != name {
			continue
		}
		if labelKey != "" && s.Labels[labelKey] != labelVal {
			continue
		}
		sum += s.Value
	}
	return sum
}

// campaign tracks one fault scenario's working state and failures.
type campaign struct {
	h        *harness
	name     string
	dir      string
	failures []string
}

func (c *campaign) failf(format string, args ...any) {
	c.failures = append(c.failures, fmt.Sprintf(format, args...))
}

func (c *campaign) dataDir() string { return filepath.Join(c.dir, "data") }
func (c *campaign) walPath() string { return filepath.Join(c.dataDir(), "wal.log") }

// runToKill starts a daemon over the corpus and SIGKILLs it once ingest
// has passed kill-at-gen. snapshotEvery is set high so the whole log
// survives for fault injection.
func (c *campaign) runToKill(snapshotEvery int) error {
	d, err := c.h.start(c.h.daemonArgs(c.dataDir(), filepath.Join(c.dir, "phase1.json"),
		"-scan-interval", c.h.cfg.interval.String(),
		"-snapshot-every", fmt.Sprint(snapshotEvery)))
	if err != nil {
		return err
	}
	if err := d.pollHealth(30*time.Second, func(hd healthDoc) bool {
		return hd.Generation >= c.h.cfg.killAtGen
	}); err != nil {
		d.kill()
		return err
	}
	d.kill()
	return nil
}

// recoverAndVerify restarts the daemon over the (possibly damaged) data
// dir, waits for convergence, and runs the three shared assertions. The
// returned report lets callers assert campaign-specific counters.
func (c *campaign) recoverAndVerify(csvPath string) *report.RunReport {
	rp := filepath.Join(c.dir, "report.json")
	args := []string{
		"-scans-csv", csvPath,
		"-data-dir", c.dataDir(),
		"-shards", fmt.Sprint(c.h.cfg.shards),
		"-report-json", rp,
		"-snapshot-every", "2",
	}
	d, err := c.h.start(args)
	if err != nil {
		c.failf("restart: %v", err)
		return nil
	}
	if err := c.h.awaitFinal(d); err != nil {
		d.kill()
		c.failf("recovered daemon never converged: %v (log tail: %s)", err, d.logTail())
		return nil
	}
	// Invariant 2: generations never mix. Every sampled document carries a
	// generation header equal to its body's generation, all at finalGen.
	for _, p := range c.h.docPathsAll() {
		body, gen, err := c.h.fetch(d, p)
		if err != nil {
			c.failf("%s: %v", p, err)
			continue
		}
		if gen != fmt.Sprint(c.h.finalGen) {
			c.failf("%s: generation header %q, want %d", p, gen, c.h.finalGen)
		}
		if !bytes.Contains(body, []byte(fmt.Sprintf(`"generation": %d`, c.h.finalGen))) {
			c.failf("%s: body generation differs from header %d", p, c.h.finalGen)
		}
		// Invariant 3a: documents byte-identical to the baseline's.
		if want := c.h.docs[p]; !bytes.Equal(body, want) {
			c.failf("%s: response differs from baseline", p)
		}
	}
	if err := d.stopGracefully(); err != nil {
		c.failf("graceful stop: %v", err)
		return nil
	}
	doc, err := readRunReport(rp)
	if err != nil {
		c.failf("report: %v", err)
		return nil
	}
	// Invariant 3b: the canonical run report is byte-identical to the
	// uninterrupted baseline's.
	got, err := canonicalBytes(doc)
	if err != nil {
		c.failf("canonicalize: %v", err)
		return doc
	}
	if !bytes.Equal(got, c.h.canonical) {
		c.failf("canonical run report differs from baseline (%d vs %d bytes)", len(got), len(c.h.canonical))
	}
	return doc
}

func (c *campaign) requireFault(doc *report.RunReport, reason string, want int64) {
	if doc == nil {
		return
	}
	if got := metricValue(doc, wal.MetricWALQuarantined, "reason", reason); got != want {
		c.failf("wal quarantine %s = %d, want %d", reason, got, want)
	}
}

// campaignKill: SIGKILL mid-ingest, no further damage. Recovery replays
// the WAL; whatever the kill tore (at most one tail frame) is quarantined.
func (h *harness) campaignKill(c *campaign) error {
	if err := c.runToKill(2); err != nil {
		return err
	}
	doc := c.recoverAndVerify(h.csvPath)
	if doc == nil {
		return nil
	}
	if doc.WAL == nil || !doc.WAL.Warm {
		c.failf("recovery was not warm: %+v", doc.WAL)
	}
	if torn := metricValue(doc, wal.MetricWALQuarantined, "reason", wal.FaultTornTail); torn > 1 {
		c.failf("kill produced %d torn tails, want at most 1", torn)
	}
	return nil
}

// campaignTruncate: kill, then shear 7 bytes off the WAL — the shape of a
// crash mid-write. Exactly one torn_tail must be quarantined.
func (h *harness) campaignTruncate(c *campaign) error {
	if err := c.runToKill(1000); err != nil {
		return err
	}
	fi, err := os.Stat(c.walPath())
	if err != nil {
		return err
	}
	if fi.Size() < 8 {
		return fmt.Errorf("wal too small to truncate (%d bytes)", fi.Size())
	}
	if err := os.Truncate(c.walPath(), fi.Size()-7); err != nil {
		return err
	}
	doc := c.recoverAndVerify(h.csvPath)
	c.requireFault(doc, wal.FaultTornTail, 1)
	return nil
}

// campaignGarble: kill, then flip one byte inside the last frame's body.
// The CRC catches it: exactly one crc_mismatch, and the damaged frame's
// batch is re-ingested from the feed.
func (h *harness) campaignGarble(c *campaign) error {
	if err := c.runToKill(1000); err != nil {
		return err
	}
	data, err := os.ReadFile(c.walPath())
	if err != nil {
		return err
	}
	if len(data) < 16 {
		return fmt.Errorf("wal too small to garble (%d bytes)", len(data))
	}
	data[len(data)-10] ^= 0x41
	if err := os.WriteFile(c.walPath(), data, 0o644); err != nil {
		return err
	}
	doc := c.recoverAndVerify(h.csvPath)
	c.requireFault(doc, wal.FaultCRCMismatch, 1)
	return nil
}

// campaignDuplicate: kill, then append the whole log to itself — stale
// generations must all be skipped, one duplicate_generation count each.
func (h *harness) campaignDuplicate(c *campaign) error {
	if err := c.runToKill(1000); err != nil {
		return err
	}
	data, err := os.ReadFile(c.walPath())
	if err != nil {
		return err
	}
	frames := 0
	if _, err := wal.Replay(data, func(uint64, simtime.Date, []*scanner.Record) error {
		frames++
		return nil
	}); err != nil {
		// A torn tail from the kill itself is fine; only complete frames
		// duplicate.
		fmt.Fprintf(os.Stderr, "  (duplicate: log tail already damaged: %v)\n", err)
	}
	if frames == 0 {
		return fmt.Errorf("no complete frames to duplicate")
	}
	f, err := os.OpenFile(c.walPath(), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	doc := c.recoverAndVerify(h.csvPath)
	if doc == nil {
		return nil
	}
	if got := metricValue(doc, wal.MetricWALQuarantined, "reason", wal.FaultDupGeneration); got < int64(frames) {
		c.failf("duplicate_generation = %d, want >= %d (one per duplicated frame)", got, frames)
	}
	return nil
}

// campaignDrain: SIGTERM mid-ingest — the graceful path. The drain must
// flush the WAL tail and manifest so the restart recovers with zero
// damage-class faults.
func (h *harness) campaignDrain(c *campaign) error {
	d, err := h.start(h.daemonArgs(c.dataDir(), filepath.Join(c.dir, "phase1.json"),
		"-scan-interval", h.cfg.interval.String(), "-snapshot-every", "1000"))
	if err != nil {
		return err
	}
	if err := d.pollHealth(30*time.Second, func(hd healthDoc) bool {
		return hd.Generation >= h.cfg.killAtGen
	}); err != nil {
		d.kill()
		return err
	}
	if err := d.stopGracefully(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	doc := c.recoverAndVerify(h.csvPath)
	if doc == nil {
		return nil
	}
	if doc.WAL == nil || !doc.WAL.Warm {
		c.failf("drain recovery was not warm: %+v", doc.WAL)
	}
	for _, reason := range []string{wal.FaultTornTail, wal.FaultCRCMismatch, wal.FaultBadFrame, wal.FaultOutOfOrder} {
		c.requireFault(doc, reason, 0)
	}
	return nil
}

// campaignSkew: the feed carries rows dated outside the study window. The
// gate must divert them (clock_skew) without disturbing the dataset.
func (h *harness) campaignSkew(c *campaign) error {
	skewed, n, err := h.corpusWithSkewedRows(c.dir)
	if err != nil {
		return err
	}
	doc := c.recoverAndVerify(skewed)
	if doc == nil {
		return nil
	}
	if got := metricValue(doc, wal.MetricFeedQuarantined, "reason", wal.FeedClockSkew); got != int64(n) {
		c.failf("feed clock_skew = %d, want %d", got, n)
	}
	return nil
}

// corpusWithSkewedRows copies the corpus and appends rows re-dated past
// the study window. Returns the copy's path and the number of rows added.
func (h *harness) corpusWithSkewedRows(dir string) (string, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	data, err := os.ReadFile(h.csvPath)
	if err != nil {
		return "", 0, err
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	const n = 3
	if len(lines) < n+1 {
		return "", 0, fmt.Errorf("corpus too small")
	}
	future := (simtime.StudyEnd + 30).Time().Format("2006-01-02")
	var extra strings.Builder
	for _, line := range lines[1 : 1+n] { // skip header
		_, rest, _ := strings.Cut(line, ",")
		fmt.Fprintf(&extra, "%s,%s\n", future, rest)
	}
	out := filepath.Join(dir, "scans-skew.csv")
	return out, n, os.WriteFile(out, append(data, extra.String()...), 0o644)
}

// campaignTail: the feed ends mid-record — a writer died between row
// bytes. The torn line is quarantined as truncated_tail; everything
// before it ingests normally.
func (h *harness) campaignTail(c *campaign) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	data, err := os.ReadFile(h.csvPath)
	if err != nil {
		return err
	}
	torn := filepath.Join(c.dir, "scans-torn.csv")
	partial := append(data, []byte("2017-03-05,10.0.0.1,443,64512,GR,9")...)
	if err := os.WriteFile(torn, partial, 0o644); err != nil {
		return err
	}
	doc := c.recoverAndVerify(torn)
	if doc == nil {
		return nil
	}
	if got := metricValue(doc, wal.MetricFeedQuarantined, "reason", wal.FeedTruncatedTail); got != 1 {
		c.failf("feed truncated_tail = %d, want 1", got)
	}
	return nil
}

// campaignWarmSpeed: over a large corpus, a warm restart must reach the
// final generation at least warm-speedup times faster than the cold boot
// that built it, and the warm run must not recompute a single cell.
func (h *harness) campaignWarmSpeed(c *campaign) error {
	big := filepath.Join(c.dir, "scans-big.csv")
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	g := synth.New(synth.Config{Domains: h.cfg.warmDoms, Seed: h.cfg.seed, Scans: h.cfg.scans})
	f, err := os.Create(big)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, strings.Join(scanner.ScanCSVHeader, ","))
	dates := g.ScanDates()
	for _, date := range dates {
		g.EmitScan(date, func(r *scanner.Record) {
			fmt.Fprintln(w, strings.Join(scanner.FormatScanRow(r), ","))
		})
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	finalGen := uint64(len(dates)) + 1
	lastScan := dates[len(dates)-1].String()
	await := func(d *daemon) error {
		return d.pollHealth(10*time.Minute, func(hd healthDoc) bool {
			return hd.Generation == finalGen && hd.LastScan == lastScan
		})
	}

	run := func(phase string) (time.Duration, *report.RunReport, error) {
		rp := filepath.Join(c.dir, phase+".json")
		start := time.Now()
		d, err := h.start([]string{
			"-scans-csv", big,
			"-data-dir", c.dataDir(),
			"-shards", fmt.Sprint(h.cfg.shards),
			"-report-json", rp,
			"-snapshot-every", "1",
		})
		if err != nil {
			return 0, nil, err
		}
		if err := await(d); err != nil {
			d.kill()
			return 0, nil, fmt.Errorf("%s boot never converged: %v", phase, err)
		}
		elapsed := time.Since(start)
		if err := d.stopGracefully(); err != nil {
			return 0, nil, err
		}
		doc, err := readRunReport(rp)
		return elapsed, doc, err
	}

	cold, _, err := run("cold")
	if err != nil {
		return err
	}
	warm, warmDoc, err := run("warm")
	if err != nil {
		return err
	}
	ratio := float64(cold) / float64(warm)
	fmt.Fprintf(os.Stderr, "  warmspeed: cold=%v warm=%v ratio=%.1fx (gate %.1fx)\n",
		cold.Round(time.Millisecond), warm.Round(time.Millisecond), ratio, h.cfg.warmRatio)
	if ratio < h.cfg.warmRatio {
		c.failf("warm restart only %.1fx faster than cold boot (want >= %.1fx): cold=%v warm=%v",
			ratio, h.cfg.warmRatio, cold, warm)
	}
	if warmDoc.WAL == nil || !warmDoc.WAL.Warm {
		c.failf("second boot was not warm: %+v", warmDoc.WAL)
	}
	if warmDoc.Cache.Misses != 0 {
		c.failf("warm boot recomputed %d cells, want 0", warmDoc.Cache.Misses)
	}
	return nil
}

// --- daemon process control -------------------------------------------

type healthDoc struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	LastScan   string `json:"last_scan"`
	Domains    int    `json:"domains"`
}

type daemon struct {
	cmd  *exec.Cmd
	base string
	// done closes once the process exits; exitErr is valid after that.
	done    chan struct{}
	exitErr error

	mu  sync.Mutex
	log []string
}

// start launches retrodnsd on an ephemeral port and waits for it to
// announce its bound address on stderr.
func (h *harness) start(args []string) (*daemon, error) {
	full := append([]string{"-listen", "127.0.0.1:0"}, args...)
	cmd := exec.Command(h.cfg.bin, full...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	d := &daemon{cmd: cmd, done: make(chan struct{})}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.log = append(d.log, line)
			if len(d.log) > 50 {
				d.log = d.log[1:]
			}
			d.mu.Unlock()
			if h.cfg.verbose {
				fmt.Fprintf(os.Stderr, "  [retrodnsd] %s\n", line)
			}
			if rest, ok := strings.CutPrefix(line, "serving /v1 API on http://"); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	go func() { d.exitErr = cmd.Wait(); close(d.done) }()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
		return d, nil
	case <-d.done:
		return nil, fmt.Errorf("daemon exited before binding: %v (log: %s)", d.exitErr, d.logTail())
	case <-time.After(30 * time.Second):
		d.kill()
		return nil, fmt.Errorf("daemon never announced its address (log: %s)", d.logTail())
	}
}

func (d *daemon) logTail() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.log)
	if n > 5 {
		return strings.Join(d.log[n-5:], " | ")
	}
	return strings.Join(d.log, " | ")
}

func (d *daemon) kill() {
	_ = d.cmd.Process.Kill()
	<-d.done
}

// stopGracefully SIGTERMs the daemon and waits for a clean exit — the
// drain path that must flush the WAL and write the report.
func (d *daemon) stopGracefully() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-d.done:
		return d.exitErr
	case <-time.After(30 * time.Second):
		d.kill()
		return fmt.Errorf("daemon ignored SIGTERM (log: %s)", d.logTail())
	}
}

func (d *daemon) pollHealth(timeout time.Duration, ready func(healthDoc) bool) error {
	deadline := time.Now().Add(timeout)
	var last healthDoc
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/v1/healthz")
		if err == nil {
			var hd healthDoc
			derr := json.NewDecoder(resp.Body).Decode(&hd)
			resp.Body.Close()
			if derr == nil {
				last = hd
				if ready(hd) {
					return nil
				}
			}
		}
		select {
		case <-d.done:
			return fmt.Errorf("daemon exited while polling: %v (log: %s)", d.exitErr, d.logTail())
		case <-time.After(20 * time.Millisecond):
		}
	}
	return fmt.Errorf("timeout after %v (last health: %+v)", timeout, last)
}

// fetch GETs a /v1 document, returning the body and generation header.
func (h *harness) fetch(d *daemon, path string) ([]byte, string, error) {
	resp, err := http.Get(d.base + path)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, resp.Header.Get("X-Retrodns-Generation"), nil
}
