//go:build !unix

package main

// maxRSSKB is unavailable off unix; -print-maxrss silently prints nothing.
func maxRSSKB() (int64, bool) { return 0, false }
