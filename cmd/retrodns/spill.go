package main

// Out-of-core corpus support for the CLI: the -spill-* flags wire
// scanner.SpillOptions into whichever dataset the run builds, and
// -spill-save/-spill-load persist a classified corpus as a framed
// snapshot ("RDCP" ++ EncodeSnapshot ++ CRC-32C) next to the segments,
// so a later process can classify the same corpus under a memory budget
// without paying the ingest peak. scripts/smoke_spill.sh drives this.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"retrodns/internal/scanner"
	"retrodns/internal/segment"
)

const (
	corpusMagic = "RDCP"
	corpusName  = "corpus.snap"
)

// spillFlags carries the raw -spill-* flag values.
type spillFlags struct {
	dir         string
	memBudgetMB int
	readMode    string
	save, load  bool
	printMaxRSS bool
}

// options converts the flags into scanner.SpillOptions (nil when spill is
// disabled). -mem-budget-mb <0 keeps everything resident, 0 spills every
// frozen shard, >0 is the resident-estimate ceiling in MiB.
func (sf spillFlags) options() (*scanner.SpillOptions, error) {
	if sf.dir == "" {
		if sf.save || sf.load || sf.memBudgetMB >= 0 {
			return nil, fmt.Errorf("-spill-save/-spill-load/-mem-budget-mb require -spill-dir")
		}
		return nil, nil
	}
	mode, err := segment.ParseMode(sf.readMode)
	if err != nil {
		return nil, err
	}
	budget := int64(-1)
	if sf.memBudgetMB >= 0 {
		budget = int64(sf.memBudgetMB) << 20
	}
	return &scanner.SpillOptions{Dir: sf.dir, BudgetBytes: budget, Mode: mode}, nil
}

// saveCorpus writes the frozen dataset as <dir>/corpus.snap atomically.
// Spilled shards serialize as segment references, so the file stays small
// for an out-of-core corpus — the bulk of the bytes are already in the
// sealed segments.
func saveCorpus(ds *scanner.Dataset, dir string) error {
	var buf bytes.Buffer
	if err := ds.EncodeSnapshot(&buf); err != nil {
		return err
	}
	return segment.AtomicWrite(dir, corpusName, segment.Frame(corpusMagic, buf.Bytes()))
}

// loadCorpus reads <dir>/corpus.snap back under the given spill options.
func loadCorpus(opts scanner.SpillOptions) (*scanner.Dataset, error) {
	data, err := os.ReadFile(filepath.Join(opts.Dir, corpusName))
	if err != nil {
		return nil, err
	}
	payload, err := segment.Unframe(corpusMagic, data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", corpusName, err)
	}
	return scanner.DecodeSnapshotSpill(payload, opts)
}

// reportMaxRSS prints the process peak RSS to stderr in a grep-friendly
// form; the spill smoke gate asserts on it. No-op when unsupported.
func reportMaxRSS(enabled bool) {
	if !enabled {
		return
	}
	if kb, ok := maxRSSKB(); ok {
		fmt.Fprintf(os.Stderr, "maxrss_kb=%d\n", kb)
	}
}
