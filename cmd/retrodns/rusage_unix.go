//go:build unix

package main

import "syscall"

// maxRSSKB returns the process's peak resident set size in KiB (Linux
// getrusage reports ru_maxrss in KiB already; other unixes may differ in
// unit, which is fine — the smoke gate compares two runs on one machine).
func maxRSSKB() (int64, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	return int64(ru.Maxrss), true
}
