// Command retrodns runs the retroactive DNS-hijack detection pipeline over
// a simulated study and prints the verdicts. It is the quick way to see
// the whole system end to end:
//
//	retrodns                  # default world, full campaign replay
//	retrodns -seed 42 -stable 2000
//	retrodns -no-campaigns    # benign-only world (expect zero findings)
//	retrodns -eval            # compare verdicts against ground truth
//	retrodns -follow          # ingest scan-by-scan through the incremental engine
//	retrodns -synth-domains 1000000   # paper-scale synthetic corpus, no world
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"retrodns/internal/core"
	"retrodns/internal/dnscore"
	"retrodns/internal/obsv"
	"retrodns/internal/pdns"
	"retrodns/internal/report"
	"retrodns/internal/scanner"
	"retrodns/internal/synth"
	"retrodns/internal/world"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "world generation seed")
		stable      = flag.Int("stable", 400, "benign stable-domain population")
		noCampaigns = flag.Bool("no-campaigns", false, "disable the attack campaigns")
		coverage    = flag.Float64("pdns-coverage", 0.85, "passive-DNS sensor coverage (0..1]")
		evaluate    = flag.Bool("eval", false, "score verdicts against simulation ground truth")
		workers     = flag.Int("workers", 0, "pipeline worker-pool size (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", scanner.DefaultShards, "dataset shard count (1..64)")
		follow      = flag.Bool("follow", false, "ingest the study scan-by-scan through the incremental engine, re-analyzing after each scan")
		strict      = flag.Bool("strict", false, "treat any record the ingest gate would quarantine as a fatal error instead of skipping it")
		verbose     = flag.Bool("v", false, "print every finding")
		jsonOut     = flag.Bool("json", false, "emit findings as JSON on stdout")
		reportJSON  = flag.String("report-json", "", "write the machine-readable run report to this file ('-' for stdout)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/vars on this address while running (most useful with -follow)")

		synthDomains = flag.Int("synth-domains", 0, "generate a paper-scale synthetic corpus with this many registered domains instead of simulating a world")
		zipfS        = flag.Float64("zipf-s", 1.1, "zipf exponent for synthetic deployment popularity")
		synthScans   = flag.Int("synth-scans", 4, "number of synthetic scan dates")
		legacyFan    = flag.Bool("legacy-fanout", false, "classify with the pre-shard-affine per-domain fan-out (uncached; A/B reference — findings must be identical)")

		spillDir    = flag.String("spill-dir", "", "segment-store directory for the out-of-core corpus (enables spill)")
		memBudgetMB = flag.Int("mem-budget-mb", -1, "resident corpus budget in MiB: <0 unlimited, 0 spill every frozen shard, >0 ceiling (requires -spill-dir)")
		spillMode   = flag.String("spill-read-mode", "auto", "how spilled segments are read: auto, mmap, or stream")
		spillSave   = flag.Bool("spill-save", false, "after ingest, write the corpus as <spill-dir>/corpus.snap and exit without classifying (synth mode only)")
		spillLoad   = flag.Bool("spill-load", false, "skip ingest and classify <spill-dir>/corpus.snap under the spill budget (synth mode only)")
		printMaxRSS = flag.Bool("print-maxrss", false, "print the process peak RSS to stderr on exit (maxrss_kb=N)")
	)
	flag.Parse()

	sf := spillFlags{
		dir: *spillDir, memBudgetMB: *memBudgetMB, readMode: *spillMode,
		save: *spillSave, load: *spillLoad, printMaxRSS: *printMaxRSS,
	}
	spill, err := sf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer reportMaxRSS(sf.printMaxRSS)

	metrics := obsv.NewRegistry()
	if *metricsAddr != "" {
		bound, stop, err := obsv.ListenAndServeMetrics(*metricsAddr, metrics, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", bound)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			stop(ctx)
		}()
	}

	if *synthDomains > 0 || sf.load {
		runSynth(synthRun{
			domains: *synthDomains, zipfS: *zipfS, scans: *synthScans,
			seed: *seed, shards: *shards, workers: *workers,
			strict: *strict, jsonOut: *jsonOut, reportJSON: *reportJSON,
			legacyFanout: *legacyFan, spill: spill, sf: sf,
		}, metrics)
		return
	}
	if sf.save {
		fmt.Fprintln(os.Stderr, "-spill-save only applies to -synth-domains mode")
		os.Exit(1)
	}

	cfg := world.DefaultConfig()
	cfg.Seed = *seed
	cfg.StableDomains = *stable
	cfg.TransitionDomains = *stable * 3 / 100
	cfg.NoisyDomains = max(2, *stable/250)
	cfg.PDNSCoverage = *coverage
	cfg.Campaigns = !*noCampaigns

	fmt.Fprintf(os.Stderr, "building world (seed=%d stable=%d campaigns=%v)...\n", cfg.Seed, cfg.StableDomains, cfg.Campaigns)
	w := world.New(cfg)

	var res *core.Result
	var dataset *scanner.Dataset
	if *follow {
		// Incremental mode: advance the simulation clock once, then feed
		// the scan series through Dataset.Append one scan at a time,
		// re-running the cached pipeline after each — the production shape
		// where analysis cost tracks the delta, not the corpus.
		w.RunClock()
		checkWorldErrors(w)
		sc := w.Scanner()
		ds := scanner.NewDatasetShards(*shards)
		dataset = ds
		ds.SetStrict(*strict)
		ds.SetMetrics(metrics)
		if spill != nil {
			if err := ds.ConfigureSpill(*spill); err != nil {
				fmt.Fprintln(os.Stderr, "spill:", err)
				os.Exit(1)
			}
		}
		w.PDNSDB.SetMetrics(metrics)
		w.CT.SetMetrics(metrics)
		pipe := &core.Pipeline{
			Params: core.DefaultParams(), Dataset: ds, Meta: w.Meta,
			PDNS: w.PDNSDB, CT: w.CT, DNSSEC: w.SecLog,
			Workers: *workers, Cache: core.NewClassifyCache(),
			Metrics: metrics,
		}
		for _, date := range w.ScanDates() {
			if err := ds.Append(date, sc.ScanWeek(date)); err != nil {
				fmt.Fprintf(os.Stderr, "ingest %s: %v\n", date, err)
				os.Exit(1)
			}
			res = pipe.Run()
			fmt.Fprintf(os.Stderr, "scan %s: gen=%d dirty=%d hits=%d misses=%d hijacked=%d targeted=%d\n",
				date, res.Stats.Generation, res.Stats.DirtyCells,
				res.Stats.CacheHits, res.Stats.CacheMisses,
				len(res.Hijacked), len(res.Targeted))
		}
		if q := ds.Quarantine(); q.Total > 0 {
			fmt.Fprintln(os.Stderr, q)
		}
		fmt.Fprintln(os.Stderr, w.Summary())
	} else {
		ds := w.RunShards(*shards)
		dataset = ds
		checkWorldErrors(w)
		// Bulk ingest builds the dataset inside the scanner, so strict mode
		// is enforced after the fact: any quarantined record is fatal.
		if q := ds.Quarantine(); q.Total > 0 {
			fmt.Fprintln(os.Stderr, q)
			if *strict {
				fmt.Fprintln(os.Stderr, "strict: refusing to analyze a partially-malformed feed")
				os.Exit(1)
			}
		}
		fmt.Fprintln(os.Stderr, w.Summary())
		ds.SetMetrics(metrics)
		if spill != nil {
			if err := ds.ConfigureSpill(*spill); err != nil {
				fmt.Fprintln(os.Stderr, "spill:", err)
				os.Exit(1)
			}
		}
		w.PDNSDB.SetMetrics(metrics)
		w.CT.SetMetrics(metrics)
		pipe := &core.Pipeline{
			Params: core.DefaultParams(), Dataset: ds, Meta: w.Meta,
			PDNS: w.PDNSDB, CT: w.CT, DNSSEC: w.SecLog,
			Workers: *workers, Cache: core.NewClassifyCache(),
			Metrics: metrics,
		}
		res = pipe.Run()
	}
	fmt.Fprint(os.Stderr, res.Stats)

	if *reportJSON != "" {
		if err := writeRunReport(*reportJSON, res, dataset, metrics); err != nil {
			fmt.Fprintln(os.Stderr, "report-json:", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		if err := report.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		if *evaluate {
			score(w, res)
		}
		return
	}

	fmt.Println(report.Funnel(res))
	if *verbose {
		fmt.Println(report.Table2(res.Hijacked))
		fmt.Println(report.Table3(res.Targeted))
	}

	if *evaluate {
		score(w, res)
	}
}

// synthRun carries the flag values for the paper-scale synthetic mode.
type synthRun struct {
	domains, scans, shards, workers int
	zipfS                           float64
	seed                            int64
	strict, jsonOut                 bool
	reportJSON                      string
	legacyFanout                    bool
	spill                           *scanner.SpillOptions
	sf                              spillFlags
}

// runSynth ingests a paper-scale synthetic corpus (internal/synth) through
// the sharded dataset and runs the classification funnel over it. There is
// no simulated world behind the records, so the auxiliary data sources are
// empty and -eval is meaningless here; the mode exists to exercise — and
// measure — the ingest spine and classifier at corpus sizes the behavioral
// simulation cannot reach.
func runSynth(cfg synthRun, metrics *obsv.Registry) {
	var ds *scanner.Dataset
	if cfg.sf.load {
		// Out-of-core restart: the corpus identity lives entirely in
		// <spill-dir>/corpus.snap + the sealed segments; no synth ingest.
		restored, err := loadCorpus(*cfg.spill)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spill-load:", err)
			os.Exit(1)
		}
		ds = restored
		ds.SetStrict(cfg.strict)
		ds.SetMetrics(metrics)
		ds.AccountRestored()
		resident, spilled := ds.SpillStats()
		fmt.Fprintf(os.Stderr, "loaded corpus: %d of %d shards spilled (~%d MiB resident, ~%d MiB spilled)\n",
			ds.SpilledShards(), ds.Shards(), resident>>20, spilled>>20)
	} else {
		g := synth.New(synth.Config{
			Domains: cfg.domains, ZipfS: cfg.zipfS, Seed: cfg.seed, Scans: cfg.scans,
		})
		fmt.Fprintf(os.Stderr, "synth corpus: %d domains, ~%d records/scan, %d scans, %d shards\n",
			cfg.domains, g.EstimatedRecords(), len(g.ScanDates()), cfg.shards)

		ds = scanner.NewDatasetShards(cfg.shards)
		ds.SetStrict(cfg.strict)
		ds.SetMetrics(metrics)
		if cfg.spill != nil {
			if err := ds.ConfigureSpill(*cfg.spill); err != nil {
				fmt.Fprintln(os.Stderr, "spill:", err)
				os.Exit(1)
			}
		}
		start := time.Now()
		for _, date := range g.ScanDates() {
			if err := ds.Append(date, g.Scan(date)); err != nil {
				fmt.Fprintf(os.Stderr, "ingest %s: %v\n", date, err)
				os.Exit(1)
			}
		}
		domains, records := ds.Size()
		fmt.Fprintf(os.Stderr, "ingested %d records over %d domains in %v (~%d MiB estimated, %d pooled certs)\n",
			records, domains, time.Since(start).Round(time.Millisecond),
			ds.EstimatedBytes()>>20, ds.Pool().Stats().Certs)
	}

	if cfg.sf.save {
		if err := saveCorpus(ds, cfg.spill.Dir); err != nil {
			fmt.Fprintln(os.Stderr, "spill-save:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "saved corpus to %s (%d of %d shards spilled)\n",
			cfg.spill.Dir, ds.SpilledShards(), ds.Shards())
		return
	}

	pipe := &core.Pipeline{
		Params: core.DefaultParams(), Dataset: ds,
		PDNS: pdns.NewDB(), Workers: cfg.workers,
		Cache: core.NewClassifyCache(), Metrics: metrics,
	}
	if cfg.sf.load {
		// One-shot classify of a restored corpus: the incremental cache
		// only pays off across repeated runs, and retaining a cached
		// classification per (domain, period) cell would defeat the
		// memory budget the corpus was loaded under.
		pipe.Cache = nil
	}
	if cfg.legacyFanout {
		// The legacy per-domain fan-out only exists on the uncached path;
		// scripts/smoke_scale.sh diffs its findings against the default
		// shard-affine engine.
		pipe.LegacyFanout = true
		pipe.Cache = nil
	}
	start := time.Now()
	res := pipe.Run()
	fmt.Fprintf(os.Stderr, "classified in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprint(os.Stderr, res.Stats)

	if cfg.reportJSON != "" {
		if err := writeRunReport(cfg.reportJSON, res, ds, metrics); err != nil {
			fmt.Fprintln(os.Stderr, "report-json:", err)
			os.Exit(1)
		}
	}
	if cfg.jsonOut {
		if err := report.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(report.Funnel(res))
}

// writeRunReport emits the machine-readable run report — the document
// cmd/benchdiff gates CI on — to a file or stdout.
func writeRunReport(path string, res *core.Result, ds *scanner.Dataset, metrics *obsv.Registry) error {
	doc := report.BuildRunReport(res, ds.Quarantine(), metrics)
	if path == "-" {
		return doc.Encode(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := doc.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkWorldErrors aborts on world-generation failures.
func checkWorldErrors(w *world.World) {
	if len(w.Errors) == 0 {
		return
	}
	for _, err := range w.Errors {
		fmt.Fprintf(os.Stderr, "world error: %v\n", err)
	}
	os.Exit(1)
}

// score compares verdicts to ground truth and prints recall/precision —
// the evaluation the paper could not perform.
func score(w *world.World, res *core.Result) {
	expHijacked, expTargeted := w.ExpectedVictims()
	got := make(map[dnscore.Name]core.Verdict)
	for _, f := range res.Findings() {
		got[f.Domain] = f.Verdict
	}
	tp, fn := 0, 0
	for _, d := range expHijacked {
		if got[d] == core.VerdictHijacked {
			tp++
		} else {
			fn++
			fmt.Printf("  missed hijacked: %s\n", d)
		}
	}
	for _, d := range expTargeted {
		if v, ok := got[d]; ok && v >= core.VerdictTargeted {
			tp++
		} else {
			fn++
			fmt.Printf("  missed targeted: %s\n", d)
		}
	}
	fp := 0
	for d := range got {
		truth := w.Truth[d]
		if truth == nil || (truth.Kind != "hijacked" && truth.Kind != "targeted") {
			fp++
			fmt.Printf("  false positive: %s\n", d)
		}
	}
	precision, recall := 1.0, 1.0
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	fmt.Printf("evaluation: tp=%d fp=%d fn=%d precision=%.3f recall=%.3f\n", tp, fp, fn, precision, recall)
}
