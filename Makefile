# Tier-1 verification plus the race-detector pass over the concurrent
# packages. `make ci` is what a pre-merge check should run.

GO ?= go

.PHONY: ci vet build test race fuzz-smoke bench bench-all

ci: vet build test race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pipeline's worker pool, the frozen dataset's lock-free reads, and the
# incremental Append path are exercised under the race detector here
# (includes TestPipelineDeterminism, TestDatasetConcurrentReads,
# TestAppendConcurrentReads, and TestIncrementalReplayEquivalence).
race:
	$(GO) test -race ./internal/core ./internal/scanner

# Ten seconds of coverage-guided fuzzing per parser: DNS names, zone-file
# snapshots, certificate chains, and the JSON report round trip. Enough to
# catch a freshly introduced data-shaped panic without stalling CI; run
# `go test -fuzz=<target> ./internal/<pkg>` open-endedly when hunting.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseName -fuzztime=10s ./internal/dnscore
	$(GO) test -run='^$$' -fuzz=FuzzZonefileParse -fuzztime=10s ./internal/zonefiles
	$(GO) test -run='^$$' -fuzz=FuzzChainVerify -fuzztime=10s ./internal/x509lite
	$(GO) test -run='^$$' -fuzz=FuzzReportJSONRoundTrip -fuzztime=10s ./internal/report

# The incremental-engine benchmarks: append+cached-rerun vs full rerun
# (the headline >=10x), certificate-fingerprint memoization, and the
# allocation cost of bulk scan ingest.
bench:
	$(GO) test -bench='BenchmarkIncrementalAppend|BenchmarkFingerprint|BenchmarkAddScan' -benchmem -count=3 -run='^$$' .

# Every benchmark in the harness (tables, figures, scale sweeps, ablations).
bench-all:
	$(GO) test -bench=. -benchmem -run='^$$' .
