# Tier-1 verification plus the race-detector pass over the concurrent
# packages. `make ci` is what a pre-merge check should run.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pipeline's worker pool and the frozen dataset's lock-free reads are
# exercised under the race detector here (includes TestPipelineDeterminism
# and TestDatasetConcurrentReads).
race:
	$(GO) test -race ./internal/core ./internal/scanner

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
