# Tier-1 verification plus the race-detector pass over the concurrent
# packages. `make ci` is what a pre-merge check should run.

GO ?= go

.PHONY: ci vet build test race bench bench-all

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pipeline's worker pool, the frozen dataset's lock-free reads, and the
# incremental Append path are exercised under the race detector here
# (includes TestPipelineDeterminism, TestDatasetConcurrentReads,
# TestAppendConcurrentReads, and TestIncrementalReplayEquivalence).
race:
	$(GO) test -race ./internal/core ./internal/scanner

# The incremental-engine benchmarks: append+cached-rerun vs full rerun
# (the headline >=10x), certificate-fingerprint memoization, and the
# allocation cost of bulk scan ingest.
bench:
	$(GO) test -bench='BenchmarkIncrementalAppend|BenchmarkFingerprint|BenchmarkAddScan' -benchmem -count=3 -run='^$$' .

# Every benchmark in the harness (tables, figures, scale sweeps, ablations).
bench-all:
	$(GO) test -bench=. -benchmem -run='^$$' .
