# Tier-1 verification plus the race-detector pass over the concurrent
# packages. `make ci` is what a pre-merge check should run.

GO ?= go

.PHONY: ci vet build test race fuzz-smoke lint bench bench-all bench-report benchgate bench-baseline smoke-serve smoke-scale smoke-chaos smoke-load smoke-spill profile-classify

ci: lint vet build test race fuzz-smoke

# The fault-tolerance conventions from PR 3, machine-checked: no panic(
# reachable from data paths, no Must* constructors outside static tables.
lint:
	./scripts/lint.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pipeline's worker pool (now shard-affine: workers own whole shards,
# walking pinned ShardViews with per-worker arenas for map/classification
# storage), the frozen dataset's lock-free reads, the incremental Append
# path, the shared metrics registry, and the serving layer's RCU snapshot
# swap are exercised under the race detector here (includes
# TestPipelineDeterminism, TestDatasetConcurrentReads,
# TestAppendConcurrentReads, TestIncrementalReplayEquivalence,
# TestConcurrentRegistry, TestFollowScrapeRace, and
# TestSnapshotSwapConsistency; internal/core covers the arena and
# slice-set deployment code on every parallel path). The root run pins
# warm-restart byte-identity across every WAL fault class under -race.
race:
	$(GO) test -race ./internal/core ./internal/scanner ./internal/obsv ./internal/serve ./internal/wal ./internal/segment
	$(GO) test -race -run TestWarmRestartBytesIdentical .

# Ten seconds of coverage-guided fuzzing per parser: DNS names, zone-file
# snapshots, certificate chains, and the JSON report round trip. Enough to
# catch a freshly introduced data-shaped panic without stalling CI; run
# `go test -fuzz=<target> ./internal/<pkg>` open-endedly when hunting.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseName -fuzztime=10s ./internal/dnscore
	$(GO) test -run='^$$' -fuzz=FuzzZonefileParse -fuzztime=10s ./internal/zonefiles
	$(GO) test -run='^$$' -fuzz=FuzzChainVerify -fuzztime=10s ./internal/x509lite
	$(GO) test -run='^$$' -fuzz=FuzzReportJSONRoundTrip -fuzztime=10s ./internal/report
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=10s ./internal/wal
	$(GO) test -run='^$$' -fuzz=FuzzSegmentReplay -fuzztime=10s ./internal/segment

# The incremental-engine benchmarks: append+cached-rerun vs full rerun
# (the headline >=10x), certificate-fingerprint memoization, the
# allocation cost of bulk scan ingest, paper-shaped sharded ingest and
# classification over the synthetic corpus (shard counts 1/4/8, plus the
# interning on/off retained-heap comparison), and the serving layer's
# query latency (cold render vs LRU hit).
bench:
	$(GO) test -bench='BenchmarkIncrementalAppend|BenchmarkFingerprint|BenchmarkAddScan|BenchmarkIngestShards|BenchmarkIngestIntern|BenchmarkSynthClassify|BenchmarkServeQuery|BenchmarkSegmentRead|BenchmarkSpilledClassify' -benchmem -count=3 -run='^$$' .

# Every benchmark in the harness (tables, figures, scale sweeps, ablations).
bench-all:
	$(GO) test -bench=. -benchmem -run='^$$' .

# The CI perf gate's inputs: a run report from the seeded example world
# plus one pass over the gated benchmarks. BENCHDIR defaults to a scratch
# dir so `make benchgate` leaves no tracked files behind.
BENCHDIR ?= /tmp/retrodns-bench
bench-report:
	mkdir -p $(BENCHDIR)
	$(GO) run ./cmd/retrodns -stable 80 -seed 1 -report-json $(BENCHDIR)/run-report.json 2>/dev/null >/dev/null
	$(GO) test -bench='BenchmarkIncrementalAppend$$|BenchmarkFingerprint|BenchmarkAddScan|BenchmarkIngestShards|BenchmarkSynthClassify|BenchmarkDeploymentAnyIP|BenchmarkServeQuery|BenchmarkSegmentRead|BenchmarkSpilledClassify' -benchmem -count=1 -run='^$$' . | tee $(BENCHDIR)/bench.txt

# Fail on funnel drift or a >20% perf regression against the committed
# baseline (see cmd/benchdiff).
benchgate: bench-report
	$(GO) run ./cmd/benchdiff -baseline BENCH_BASELINE.json -report $(BENCHDIR)/run-report.json -bench $(BENCHDIR)/bench.txt

# Regenerate the committed baseline after an intentional funnel or perf
# change; commit the resulting BENCH_BASELINE.json with the change.
bench-baseline: bench-report
	$(GO) run ./cmd/benchdiff -update -baseline BENCH_BASELINE.json -report $(BENCHDIR)/run-report.json -bench $(BENCHDIR)/bench.txt

# CPU profile of the classification hot path: one uncached pipeline run
# over a 50k-domain synthetic corpus (no simulator in the profile). Open
# with `go tool pprof $(BENCHDIR)/classify.pprof`.
profile-classify:
	mkdir -p $(BENCHDIR)
	$(GO) run ./cmd/repro -synth-domains 50000 -cpuprofile $(BENCHDIR)/classify.pprof -quiet
	@echo "profile written to $(BENCHDIR)/classify.pprof"

# End-to-end daemon smoke: start retrodnsd on a small -follow world, poll
# /v1/healthz until a snapshot is live, hit every /v1 endpoint, and check
# the daemon drains cleanly on SIGTERM.
smoke-serve:
	./scripts/smoke_serve.sh

# Paper-scale smoke: 50k-domain streaming worldgen (byte-identical per
# seed), sharded ingest+classify with shards 1 vs 8 (identical findings),
# corpus gauges in the run report, all under a wall-clock budget.
smoke-scale:
	./scripts/smoke_scale.sh

# Durability smoke: the chaos harness kills, truncates, garbles, and
# duplicates a live retrodnsd's WAL, then requires byte-identical
# recovery, accounted fault counters, and a >=5x warm-restart speedup
# over a 50k-domain corpus.
smoke-chaos:
	./scripts/smoke_chaos.sh

# Load gate: cmd/loadgen against retrodnsd at -replicas 1 and 2 on a
# 50k-domain corpus, byte-identical endpoint bodies across replica
# counts, p99/QPS gated against LOAD_BASELINE.json, and the >=2x
# prerendered-hit speedup over BENCH_BASELINE.json (cmd/benchdiff).
smoke-load:
	./scripts/smoke_load.sh

# Out-of-core gate: a 200k-domain synthetic corpus classified three ways —
# fully resident, spilled to segments under a tight -mem-budget-mb, and
# reloaded from the saved corpus in a fresh process — with byte-identical
# findings, residency gauges in the run report, and a peak-RSS ceiling on
# the spilled classify.
smoke-spill:
	./scripts/smoke_spill.sh
