package retrodns_bench

import (
	"bytes"
	"math/rand"
	"testing"

	"retrodns/internal/core"
	"retrodns/internal/report"
	"retrodns/internal/scanner"
	"retrodns/internal/world"
)

// TestAppendOrderInvariance is the metamorphic twin of the replay test:
// the final report must not depend on the order scans were Appended in.
// The same study is ingested in date order, reversed, and under seeded
// shuffles — with and without a ClassifyCache (the shuffled cached runs
// drive the out-of-order merge and rebuild paths on every step) — and
// every final JSON report must be byte-identical to the in-order one.
func TestAppendOrderInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full study replay")
	}
	cfg := world.Config{Seed: 3, StableDomains: 12, Campaigns: true, PDNSCoverage: 1}
	w := world.New(cfg)
	w.RunClock()
	if len(w.Errors) > 0 {
		t.Fatalf("world errors: %v", w.Errors)
	}
	sc := w.Scanner()
	dates := w.ScanDates()
	scans := make([][]*scanner.Record, len(dates))
	for i, d := range dates {
		scans[i] = sc.ScanWeek(d)
	}

	finalJSON := func(order []int, cached bool) []byte {
		ds := scanner.NewDataset()
		pipe := &core.Pipeline{
			Params: core.DefaultParams(), Dataset: ds, Meta: w.Meta,
			PDNS: w.PDNSDB, CT: w.CT, DNSSEC: w.SecLog, Workers: 4,
		}
		if cached {
			pipe.Cache = core.NewClassifyCache()
		}
		for _, i := range order {
			if err := ds.Append(dates[i], scans[i]); err != nil {
				t.Fatalf("Append(%s): %v", dates[i], err)
			}
			if cached {
				// Running after every out-of-order Append exercises the
				// cache's merge/rebuild machinery, not just the final state.
				pipe.Run()
			}
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, pipe.Run()); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}

	inOrder := make([]int, len(dates))
	for i := range inOrder {
		inOrder[i] = i
	}
	want := finalJSON(inOrder, false)
	if bytes.Equal(want, []byte("{}")) || len(want) < 100 {
		t.Fatalf("baseline report suspiciously small:\n%s", want)
	}

	orders := map[string][]int{"reversed": make([]int, len(dates))}
	for i := range dates {
		orders["reversed"][i] = len(dates) - 1 - i
	}
	for _, seed := range []int64{1, 7} {
		shuffled := append([]int(nil), inOrder...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		orders["shuffled-"+string(rune('0'+seed))] = shuffled
	}

	for name, order := range orders {
		for _, cached := range []bool{false, true} {
			got := finalJSON(order, cached)
			if !bytes.Equal(got, want) {
				t.Errorf("%s (cached=%v): final report differs from in-order ingest", name, cached)
			}
		}
	}
	// The in-order cached run must agree too.
	if got := finalJSON(inOrder, true); !bytes.Equal(got, want) {
		t.Error("in-order cached run differs from uncached baseline")
	}
}
