package retrodns_bench

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"retrodns/internal/core"
	"retrodns/internal/obsv"
	"retrodns/internal/pdns"
	"retrodns/internal/report"
	"retrodns/internal/scanner"
	"retrodns/internal/synth"
	"retrodns/internal/wal"
)

// writeSynthCSV renders a synth corpus to a scans.csv file and returns
// its path and the number of scans.
func writeSynthCSV(t *testing.T, domains int, seed int64, scans int) (string, int) {
	t.Helper()
	g := synth.New(synth.Config{Domains: domains, Seed: seed, Scans: scans})
	path := filepath.Join(t.TempDir(), "scans.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, strings.Join(scanner.ScanCSVHeader, ","))
	for _, date := range g.ScanDates() {
		g.EmitScan(date, func(r *scanner.Record) {
			fmt.Fprintln(w, strings.Join(scanner.FormatScanRow(r), ","))
		})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, len(g.ScanDates())
}

// runDaemonPhase simulates one retrodnsd process lifetime over a durable
// data dir: recover, re-analyze, feed the CSV, snapshot, close. A fresh
// metrics registry per call models the fresh process. stopAfter > 0
// simulates a kill: the phase returns after that many appends WITHOUT
// closing the store — no final snapshot, no manifest update, the WAL tail
// exactly as the dying process left it. A completed phase (stopAfter = 0)
// returns the canonical run-report encoding the chaos harness compares.
func runDaemonPhase(t *testing.T, dir, csvPath string, shards, every, stopAfter int) ([]byte, *wal.Recovery, uint64) {
	t.Helper()
	reg := obsv.NewRegistry()
	store, rec, err := wal.Open(wal.Options{Dir: dir, Shards: shards, SnapshotEvery: every, Metrics: reg})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	ds := rec.Dataset
	ds.SetMetrics(reg)
	if rec.Warm {
		ds.AccountRestored()
	}
	pipe := &core.Pipeline{
		Params: core.DefaultParams(), Dataset: ds, PDNS: pdns.NewDB(),
		Workers: 2, Cache: rec.Cache, Metrics: reg,
	}
	var res *core.Result
	if ds.Frozen() {
		res = pipe.Run() // republish the recovered generation first
	}
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	feeder := wal.NewFeeder(f, ds, store, reg)
	appended := 0
	for {
		_, ok, err := feeder.Tick()
		if err != nil {
			t.Fatalf("feed: %v", err)
		}
		if !ok {
			break
		}
		appended++
		res = pipe.Run()
		if _, err := store.MaybeSnapshot(); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		if stopAfter > 0 && appended >= stopAfter {
			// Killed: the store is abandoned mid-flight, never Closed.
			return nil, rec, ds.Generation()
		}
	}
	feeder.Finish()
	if err := store.Snapshot(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if res == nil {
		t.Fatal("phase produced no result")
	}
	doc := report.BuildRunReport(res, ds.Quarantine(), reg)
	var buf bytes.Buffer
	if err := doc.Canonical().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rec, ds.Generation()
}

// TestWarmRestartBytesIdentical is the acceptance pin for the durability
// layer: for every fault class — plain kill, torn tail, garbled byte,
// duplicated log — and for shard counts 1 and 8, a daemon killed
// mid-ingest and restarted over the damaged directory must finish with a
// canonical run report byte-identical to an uninterrupted run's, at the
// same generation, with the recovery fault counters accounting for
// exactly the damage injected and nothing else.
func TestWarmRestartBytesIdentical(t *testing.T) {
	csvPath, scans := writeSynthCSV(t, 250, 17, 5)
	const killAfter = 2
	for _, shards := range []int{1, 8} {
		want, _, wantGen := runDaemonPhase(t, t.TempDir(), csvPath, shards, 2, 0)
		if wantGen != uint64(scans)+1 {
			t.Fatalf("baseline generation %d, want %d", wantGen, scans+1)
		}
		for _, fault := range []string{"kill", "torn", "garble", "duplicate"} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, fault), func(t *testing.T) {
				dir := t.TempDir()
				// The kill case snapshots normally; the damage cases pin
				// snapshots off so the injected fault is guaranteed to
				// land on live WAL frames.
				every := 1000
				if fault == "kill" {
					every = killAfter
				}
				_, _, killedGen := runDaemonPhase(t, dir, csvPath, shards, every, killAfter)
				walPath := filepath.Join(dir, "wal.log")
				frames := 0
				switch fault {
				case "torn":
					fi, err := os.Stat(walPath)
					if err != nil {
						t.Fatal(err)
					}
					if err := os.Truncate(walPath, fi.Size()-7); err != nil {
						t.Fatal(err)
					}
				case "garble":
					data, err := os.ReadFile(walPath)
					if err != nil {
						t.Fatal(err)
					}
					data[len(data)-10] ^= 0x41
					if err := os.WriteFile(walPath, data, 0o644); err != nil {
						t.Fatal(err)
					}
				case "duplicate":
					data, err := os.ReadFile(walPath)
					if err != nil {
						t.Fatal(err)
					}
					frames = killAfter // one frame per append survived in the log
					wf, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := wf.Write(data); err != nil {
						t.Fatal(err)
					}
					if err := wf.Close(); err != nil {
						t.Fatal(err)
					}
				}

				got, rec, gen := runDaemonPhase(t, dir, csvPath, shards, 2, 0)
				if !rec.Warm {
					t.Fatal("recovery was not warm")
				}
				// Exact fault accounting: every injected fault counted
				// under its reason, nothing else counted.
				wantFaults := map[string]int64{}
				switch fault {
				case "torn":
					wantFaults[wal.FaultTornTail] = 1
				case "garble":
					wantFaults[wal.FaultCRCMismatch] = 1
				case "duplicate":
					wantFaults[wal.FaultDupGeneration] = int64(frames)
				}
				if fmt.Sprint(rec.Faults) != fmt.Sprint(wantFaults) {
					t.Fatalf("recovery faults %v, want %v", rec.Faults, wantFaults)
				}
				// Generations never mix: recovery lands at or before the
				// killed generation, the finished run at the baseline's.
				if rec.Generation > killedGen {
					t.Fatalf("recovered generation %d past killed %d", rec.Generation, killedGen)
				}
				if gen != wantGen {
					t.Fatalf("final generation %d, want %d", gen, wantGen)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("canonical report after %s recovery differs from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s",
						fault, got, want)
				}
			})
		}
	}
}
